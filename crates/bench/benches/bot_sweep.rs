//! Bot throughput: IABot article-sweep rate and WaybackMedic rescue rate —
//! the operations that run at Wikipedia scale in production.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use permadead_bench::Repro;
use permadead_bot::{IaBot, IaBotConfig, WaybackMedic};
use permadead_sim::ScenarioConfig;
use permadead_wiki::WikiStore;
use std::sync::OnceLock;

fn repro() -> &'static Repro {
    static R: OnceLock<Repro> = OnceLock::new();
    R.get_or_init(|| {
        Repro::build(ScenarioConfig {
            rot_links: 500,
            ..ScenarioConfig::small(42)
        })
    })
}

fn clone_wiki(src: &WikiStore) -> WikiStore {
    let mut w = WikiStore::new();
    for a in src.articles() {
        w.insert(a.clone());
    }
    w
}

fn bench_iabot_sweep(c: &mut Criterion) {
    let r = repro();
    c.bench_function("bot/iabot_full_sweep", |b| {
        b.iter_batched(
            || clone_wiki(&r.scenario.wiki),
            |mut wiki| {
                let mut bot = IaBot::new(IaBotConfig::default());
                black_box(bot.sweep(
                    &mut wiki,
                    &r.scenario.web,
                    &r.scenario.archive,
                    r.scenario.config.study_time,
                ))
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_medic_run(c: &mut Criterion) {
    let r = repro();
    c.bench_function("bot/wayback_medic_run", |b| {
        b.iter_batched(
            || clone_wiki(&r.scenario.wiki),
            |mut wiki| {
                black_box(WaybackMedic::new().run(
                    &mut wiki,
                    &r.scenario.archive,
                    r.scenario.config.study_time,
                ))
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_dead_check(c: &mut Criterion) {
    let r = repro();
    let bot = IaBot::new(IaBotConfig::default());
    let urls: Vec<_> = r.march.entries.iter().take(64).map(|e| e.url.clone()).collect();
    c.bench_function("bot/dead_check_64_links", |b| {
        b.iter(|| {
            for u in &urls {
                black_box(bot.link_is_dead(&r.scenario.web, u, r.scenario.config.study_time));
            }
        })
    });
}

criterion_group!(benches, bench_iabot_sweep, bench_medic_run, bench_dead_check);
criterion_main!(benches);
