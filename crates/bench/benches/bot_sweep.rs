//! Bot throughput: IABot article-sweep rate and WaybackMedic rescue rate —
//! the operations that run at Wikipedia scale in production.
//!
//! After the criterion benches, the run prints one JSON object per line
//! (`{"bench": ...}`) so CI can scrape headline numbers without parsing
//! criterion's human-readable output.

use criterion::{black_box, BatchSize, Criterion};
use permadead_bench::Repro;
use permadead_bot::{IaBot, IaBotConfig, WaybackMedic};
use permadead_sim::ScenarioConfig;
use permadead_wiki::WikiStore;
use std::sync::OnceLock;

fn repro() -> &'static Repro {
    static R: OnceLock<Repro> = OnceLock::new();
    R.get_or_init(|| {
        Repro::build(ScenarioConfig {
            rot_links: 500,
            ..ScenarioConfig::small(42)
        })
    })
}

fn clone_wiki(src: &WikiStore) -> WikiStore {
    let mut w = WikiStore::new();
    for a in src.articles() {
        w.insert(a.clone());
    }
    w
}

fn bench_iabot_sweep(c: &mut Criterion) {
    let r = repro();
    c.bench_function("bot/iabot_full_sweep", |b| {
        b.iter_batched(
            || clone_wiki(&r.scenario.wiki),
            |mut wiki| {
                let mut bot = IaBot::new(IaBotConfig::default());
                black_box(bot.sweep(
                    &mut wiki,
                    &r.scenario.web,
                    &r.scenario.archive,
                    r.scenario.config.study_time,
                ))
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_medic_run(c: &mut Criterion) {
    let r = repro();
    c.bench_function("bot/wayback_medic_run", |b| {
        b.iter_batched(
            || clone_wiki(&r.scenario.wiki),
            |mut wiki| {
                black_box(WaybackMedic::new().run(
                    &mut wiki,
                    &r.scenario.archive,
                    r.scenario.config.study_time,
                ))
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_dead_check(c: &mut Criterion) {
    let r = repro();
    let bot = IaBot::new(IaBotConfig::default());
    let urls: Vec<_> = r.march.entries.iter().take(64).map(|e| e.url.clone()).collect();
    c.bench_function("bot/dead_check_64_links", |b| {
        b.iter(|| {
            for u in &urls {
                black_box(bot.link_is_dead(&r.scenario.web, u, r.scenario.config.study_time));
            }
        })
    });
}

/// Machine-readable tail: sweep and rescue wall clock as JSON lines.
fn json_summary() {
    let r = repro();
    let reps = 3;

    let t0 = std::time::Instant::now();
    let mut checked = 0usize;
    for _ in 0..reps {
        let mut wiki = clone_wiki(&r.scenario.wiki);
        let mut bot = IaBot::new(IaBotConfig::default());
        let report = bot.sweep(
            &mut wiki,
            &r.scenario.web,
            &r.scenario.archive,
            r.scenario.config.study_time,
        );
        checked = black_box(report).links_checked;
    }
    println!(
        "{{\"bench\":\"bot/iabot_full_sweep\",\"articles\":{},\"links_checked\":{checked},\"mean_ms\":{:.3}}}",
        r.scenario.wiki.len(),
        t0.elapsed().as_secs_f64() * 1e3 / reps as f64,
    );

    let t0 = std::time::Instant::now();
    let mut rescued = 0usize;
    for _ in 0..reps {
        let mut wiki = clone_wiki(&r.scenario.wiki);
        let report =
            WaybackMedic::new().run(&mut wiki, &r.scenario.archive, r.scenario.config.study_time);
        rescued = black_box(report).rescued;
    }
    println!(
        "{{\"bench\":\"bot/wayback_medic_run\",\"rescued\":{rescued},\"mean_ms\":{:.3}}}",
        t0.elapsed().as_secs_f64() * 1e3 / reps as f64,
    );
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_iabot_sweep(&mut c);
    bench_medic_run(&mut c);
    bench_dead_check(&mut c);
    c.final_summary();
    json_summary();
}
