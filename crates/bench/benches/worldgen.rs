//! World-generation throughput: how fast a 15-year history replays. This is
//! the setup cost of every experiment; sample counts are kept low because a
//! single iteration is already seconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use permadead_sim::{build, Scenario, ScenarioConfig};

fn bench_build_only(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        rot_links: 400,
        ..ScenarioConfig::small(42)
    };
    c.bench_function("worldgen/build_400_links", |b| {
        b.iter(|| black_box(build(black_box(&cfg))))
    });
}

fn bench_full_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("worldgen");
    group.sample_size(10);
    let cfg = ScenarioConfig {
        rot_links: 400,
        ..ScenarioConfig::small(42)
    };
    group.bench_function("full_scenario_400_links", |b| {
        b.iter(|| black_box(Scenario::generate(black_box(cfg.clone()))))
    });
    group.finish();
}

criterion_group!(benches, bench_build_only, bench_full_scenario);
criterion_main!(benches);
