//! End-to-end tests over real loopback TCP: one shared server, every
//! endpoint, the acceptance criteria of the serve subsystem.

use permadead_serve::{start, AuditService, CacheConfig, ServerConfig, ServerHandle};
use permadead_sim::ScenarioConfig;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Issue one request against `addr`, return (status_line, headers, body).
fn request(addr: std::net::SocketAddr, raw: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Scrape one counter value out of Prometheus text.
fn metric_value(metrics_body: &str, name: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

fn spawn_server() -> ServerHandle {
    let cfg = ScenarioConfig {
        rot_links: 40,
        ..ScenarioConfig::small(7)
    };
    let service = AuditService::new(cfg, CacheConfig::default());
    start(
        service,
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            debug_endpoints: true,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

#[test]
fn endpoints_end_to_end() {
    let handle = spawn_server();
    let addr = handle.addr();

    // /healthz: liveness plus the operator triage numbers
    let (status, _, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"pending\":"), "{body}");
    assert!(body.contains("\"workers\":2"), "{body}");
    assert!(body.contains("\"watchlist\":0"), "{body}");

    // /check on a known dataset URL: twice, second from cache
    let url = handle.service().dataset().entries[0].url.to_string();
    let path = format!("/check?url={}", percent_encode(&url));
    let (status, _, first) = get(addr, &path);
    assert!(status.contains("200"), "{status}: {first}");
    assert!(first.contains("\"verdict\":"), "{first}");
    assert!(first.contains("\"provenance\":\"dataset\""), "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");

    let net_before = handle.service().net_snapshot();
    let (_, _, second) = get(addr, &path);
    assert!(second.contains("\"cached\":true"), "{second}");
    let delta = handle.service().net_snapshot().diff(&net_before);
    assert_eq!(delta.requests, 0, "cache hit must not touch the simulated web");
    assert_eq!(
        first.replace("\"cached\":false", ""),
        second.replace("\"cached\":true", ""),
        "verdict changed between miss and hit"
    );

    // /check without url, and with garbage
    let (status, _, _) = get(addr, "/check");
    assert!(status.contains("400"), "{status}");
    let (status, _, body) = get(addr, "/check?url=%20not%20a%20url");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("error"));

    // POST /batch with three URLs (one repeated → cache hit, one unknown)
    let batch_body = format!("{url}\n{url}\nhttp://unknown.example.org/zzz\n");
    let (status, _, body) = request(
        addr,
        &format!(
            "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            batch_body.len(),
            batch_body
        ),
    );
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.starts_with("{\"results\":["), "{body}");
    assert_eq!(body.matches("\"verdict\":").count(), 3, "{body}");
    assert!(body.contains("\"provenance\":\"unknown\""), "{body}");

    // /metrics: counters present and consistent with the traffic so far
    let (status, _, metrics) = get(addr, "/metrics");
    assert!(status.contains("200"));
    assert!(metric_value(&metrics, "permadead_cache_hits_total") >= 2.0, "{metrics}");
    assert!(
        metric_value(&metrics, "permadead_requests_total{endpoint=\"check\"}") >= 4.0
    );
    assert!(metric_value(&metrics, "permadead_requests_total{endpoint=\"batch\"}") >= 1.0);
    assert!(metric_value(&metrics, "permadead_cache_hit_ratio") > 0.0);
    assert!(metrics.contains("permadead_stage_hits_total{stage=\"live-check\"}"));
    assert!(metrics.contains("permadead_request_duration_seconds_bucket{le=\"+Inf\"}"));
    assert!(metrics.contains("permadead_simweb_requests_total"));

    // unknown path → 404, wrong method → 405
    let (status, _, _) = get(addr, "/nope");
    assert!(status.contains("404"));
    let (status, _, _) = request(
        addr,
        "POST /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("405"));

    handle.shutdown();
}

#[test]
fn verdicts_match_batch_audit_over_http() {
    let handle = spawn_server();
    let addr = handle.addr();
    let service = handle.service();
    let batch = permadead_core::Study::run(
        &service.scenario().web,
        &service.scenario().archive,
        service.dataset(),
        service.study_time(),
    );
    // a handful of findings incl. the first genuinely-dead one
    for finding in batch.findings.iter().take(5) {
        let path = format!("/check?url={}", percent_encode(&finding.entry.url.to_string()));
        let (status, _, body) = get(addr, &path);
        assert!(status.contains("200"), "{status}");
        let expected = if finding.genuinely_alive() {
            "\"verdict\":\"alive\""
        } else {
            "\"verdict\":\"permanently-dead\""
        };
        assert!(body.contains(expected), "{body}");
        assert!(
            body.contains(&format!("\"live_status\":\"{}\"", finding.live.status)),
            "{body}"
        );
        assert!(
            body.contains(&format!("\"archival\":\"{:?}\"", finding.archival)),
            "{body}"
        );
    }
    handle.shutdown();
}

#[test]
fn admission_control_rejects_with_retry_after() {
    // 1 worker, queue of 1: a slow request occupies the worker, the next
    // fills the queue, and everything after that must get 503 + Retry-After
    let cfg = ScenarioConfig {
        rot_links: 40,
        ..ScenarioConfig::small(7)
    };
    let service = AuditService::new(cfg, CacheConfig::default());
    let handle = start(
        service,
        ServerConfig {
            workers: 1,
            queue_cap: 1,
            debug_endpoints: true,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // occupy the worker
    let busy = std::thread::spawn(move || get(addr, "/debug/sleep?ms=1500"));
    std::thread::sleep(std::time::Duration::from_millis(300));
    // fill the queue
    let queued = std::thread::spawn(move || get(addr, "/debug/sleep?ms=10"));
    std::thread::sleep(std::time::Duration::from_millis(300));

    // the acceptor must now refuse; a few attempts make the race immaterial
    let mut saw_503 = false;
    for _ in 0..5 {
        let (status, headers, _) = get(addr, "/healthz");
        if status.contains("503") {
            // occupancy-scaled hint: base 1s × (1 + the one queued request).
            // A fixed hint would send every refused client back in lockstep.
            assert!(
                headers.to_ascii_lowercase().contains("retry-after: 2"),
                "503 without occupancy-scaled Retry-After: {headers}"
            );
            saw_503 = true;
            break;
        }
    }
    assert!(saw_503, "admission control never refused");

    let (status, _, _) = busy.join().unwrap();
    assert!(status.contains("200"));
    let _ = queued.join().unwrap();

    // rejected counter surfaced in /metrics
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metric_value(&metrics, "permadead_rejected_total") >= 1.0);
    handle.shutdown();
}
