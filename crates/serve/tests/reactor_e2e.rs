//! End-to-end tests for the event-driven reactor: the failure modes that
//! killed (or silently degraded) the old thread-per-connection server.
//!
//! - slow-loris drippers must not delay normal clients (no worker is ever
//!   blocked on socket I/O, so there is no head-of-line blocking and no
//!   need for the old 5s read timeout);
//! - thousands of idle connections are just slab entries, not threads;
//! - a client that reads one byte and stalls holds a buffer — and when it
//!   dies, the undelivered response is counted, not lost silently;
//! - HTTP/1.1 keep-alive and pipelining work over a single connection;
//! - hostile request framing gets a clean 400/413 response, never a drop;
//! - `--port 0` reports the kernel-assigned address.

use permadead_serve::{start, AuditService, CacheConfig, ServerConfig, ServerHandle};
use permadead_sim::ScenarioConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn request(addr: SocketAddr, raw: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (String, String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn metric_value(metrics_body: &str, name: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let cfg = ScenarioConfig {
        rot_links: 40,
        ..ScenarioConfig::small(7)
    };
    let service = AuditService::new(cfg, CacheConfig::default());
    start(service, config).expect("server starts")
}

/// 64 slow-loris connections drip header bytes while a burst of normal
/// clients runs; the burst must complete promptly. Under the old server
/// each dripper pinned a pool thread for up to the 5s read timeout, so 64
/// of them starved everyone; under the reactor they are 64 slab entries.
#[test]
fn slow_loris_drippers_do_not_starve_normal_clients() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let mut drippers: Vec<TcpStream> = (0..64)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("dripper connect");
            s.write_all(b"G").expect("first byte");
            s
        })
        .collect();
    // keep dripping roughly a byte per second per connection in the
    // background so every socket stays active (not just idle) for the
    // whole burst
    let stop = Arc::new(AtomicBool::new(false));
    let drip_stop = stop.clone();
    let dripper_thread = std::thread::spawn(move || {
        let header = b"ET /healthz HTTP/1.1\r\n";
        for byte in header {
            if drip_stop.load(Ordering::SeqCst) {
                break;
            }
            for s in &mut drippers {
                let _ = s.write_all(&[*byte]);
            }
            std::thread::sleep(Duration::from_millis(300));
        }
        drippers // keep them open until the burst is done
    });

    // the burst: 200 sequential requests, all while the drippers hold
    // their 64 connections mid-header
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(200);
    for _ in 0..200 {
        let t = Instant::now();
        let (status, _, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    stop.store(true, Ordering::SeqCst);
    let drippers = dripper_thread.join().expect("dripper thread");

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 = latencies_ms[(latencies_ms.len() * 99) / 100 - 1];
    // generous for CI noise; the point is "milliseconds, not the seconds a
    // blocked-pool server would show"
    assert!(p99 < 500.0, "p99 {p99:.1}ms under slow-loris load");

    // the drippers were never answered and never dropped: still open
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metric_value(&metrics, "permadead_serve_open_connections") >= 64.0,
        "drippers were dropped:\n{metrics}"
    );
    drop(drippers);
    handle.shutdown();
}

/// Thousands of concurrent idle connections: each holds a slab slot and a
/// few bytes of buffer. (The 10k-across-two-processes version runs in
/// scripts/check.sh via `serve-probe --flood`; in-process both ends share
/// one fd table, so this caps at 5000 = 10k fds.)
#[test]
fn five_thousand_concurrent_connections_are_cheap() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    const N: usize = 5000;
    let mut held = Vec::with_capacity(N);
    for i in 0..N {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                s.write_all(b"GET /healthz HT").expect("partial write");
                held.push(s);
            }
            Err(e) => panic!("connect #{i} failed: {e}"),
        }
    }

    // give the reactor a moment to accept the tail of the flood, then
    // prove a fresh request still goes straight through
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, metrics) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        let open = metric_value(&metrics, "permadead_serve_open_connections");
        if open >= N as f64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {open} of {N} connections accepted"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let t = Instant::now();
    let (status, _, body) = get(addr, "/healthz");
    let elapsed = t.elapsed();
    assert!(status.contains("200"), "{status}");
    assert!(body.contains(&format!("\"conns\":{N}")) || body.contains("\"conns\":"), "{body}");
    assert!(
        elapsed < Duration::from_secs(2),
        "/healthz took {elapsed:?} with {N} connections held"
    );

    drop(held);
    handle.shutdown();
}

/// A client that reads one byte of a multi-megabyte response and then dies:
/// the connection must be torn down and the undelivered response counted in
/// `permadead_serve_write_aborted_total` — under the old 250ms write
/// timeout this was indistinguishable from success or silently dropped.
#[test]
fn stalled_reader_death_counts_an_aborted_write() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        max_batch: 4096,
        // without this the kernel's send-buffer autotuning absorbs the whole
        // multi-megabyte response and the write never blocks at all
        sndbuf: Some(16 * 1024),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // ~1.7MB response: 3000 copies of a long unknown URL (cache makes the
    // repeats cheap; the point is the byte count, far beyond what a 16KB
    // send buffer plus the client's stalled receive window will hold)
    let url = format!("http://unknown.example.org/{}", "x".repeat(220));
    let body: String = vec![url.as_str(); 3000].join("\n");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        )
        .expect("write request");

    // read exactly one byte — the response is coming — then stall
    let mut one = [0u8; 1];
    stream.read_exact(&mut one).expect("first byte");
    assert_eq!(one[0], b'H');
    std::thread::sleep(Duration::from_millis(700));
    // die with megabytes unread: the kernel answers the server's next
    // write with a reset
    drop(stream);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, metrics) = get(addr, "/metrics");
        if metric_value(&metrics, "permadead_serve_write_aborted_total") >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "aborted write never counted:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.shutdown();
}

/// HTTP/1.1 keep-alive: several requests over one connection, including two
/// pipelined in a single write. The old server closed after every response.
#[test]
fn keep_alive_serves_sequential_and_pipelined_requests() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let read_one_response = |stream: &mut TcpStream| -> (String, String) {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            assert_eq!(stream.read(&mut byte).expect("read head"), 1, "early close");
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("content-length");
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).expect("read body");
        (head, String::from_utf8(body).unwrap())
    };

    // three sequential requests on the same connection
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let (head, body) = read_one_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.to_ascii_lowercase().contains("connection: keep-alive"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
    }

    // two pipelined in one write; both answered in order
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .expect("pipeline write");
    let (head, _) = read_one_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let (head, body) = read_one_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.to_ascii_lowercase().contains("connection: close"), "{head}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    // `Connection: close` honored: the stream now EOFs
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "bytes after close: {rest:?}");

    handle.shutdown();
}

/// Hostile framing gets an answer, never a silent drop: duplicate
/// Content-Length (request smuggling's favorite shape), non-numeric and
/// signed lengths, oversized declared bodies, garbage header lines.
#[test]
fn hostile_framing_gets_clean_errors_over_the_wire() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // duplicate Content-Length — even two agreeing copies
    let (status, _, body) = request(
        addr,
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
    );
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("malformed"), "{body}");

    // non-numeric / signed lengths
    for cl in ["abc", "-1", "+4", "4x"] {
        let (status, _, _) = request(
            addr,
            &format!("POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {cl}\r\nConnection: close\r\n\r\nabcd"),
        );
        assert!(status.contains("400"), "Content-Length: {cl} → {status}");
    }

    // a declared body over the 1MB cap → 413 up front, no buffering
    let (status, _, _) = request(
        addr,
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: 2000000\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("413"), "{status}");

    // a header line with no colon
    let (status, _, _) = request(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nnot a header line\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("400"), "{status}");

    // all four shapes surfaced as 4xx in metrics, none as drops
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metric_value(&metrics, "permadead_responses_total{class=\"4xx\"}") >= 7.0,
        "{metrics}"
    );
    handle.shutdown();
}

/// `port: 0` must expose the kernel-assigned bound address — the handle's
/// `addr()` is the source of truth every test and script connects to.
#[test]
fn port_zero_reports_the_kernel_assigned_address() {
    let handle = spawn_server(ServerConfig {
        port: 0,
        workers: 1,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    assert_ne!(addr.port(), 0, "addr() must carry the bound port, not the requested 0");
    let (status, _, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    handle.shutdown();
}
