//! End-to-end test of the incremental re-audit path: a watched link that is
//! in the batch dataset goes dark, climbs the strike ladder to a tag, and
//! the scheduler's dirty set drives the incremental engine — `GET /report`
//! must reflect exactly that one link's flip (O(changed), not a full study
//! re-run), then fold it back on revival.

use permadead_core::{live_check, Dataset};
use permadead_net::fault::{Fault, FaultProfile};
use permadead_net::Duration;
use permadead_sched::{Cadence, PolicySpec};
use permadead_serve::{start, AuditService, CacheConfig, ServerConfig, WatchConfig};
use permadead_sim::{Scenario, ScenarioConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

fn request(addr: std::net::SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let (status, _) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (String, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

/// Pull `"key":<number>` out of a flat JSON object body.
fn json_num(body: &str, key: &str) -> i64 {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("{key} not in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparseable {key} in {body}"))
}

fn metric_value(metrics_body: &str, name: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

/// Poll `path` until `pred` holds on the body (pump ticks every 25ms).
fn poll(
    addr: std::net::SocketAddr,
    path: &str,
    what: &str,
    pred: impl Fn(&str) -> bool,
) -> String {
    let mut last = String::new();
    for _ in 0..200 {
        let (_, body) = get(addr, path);
        if pred(&body) {
            return body;
        }
        last = body;
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("{path} never reached: {what}\nlast seen: {last}");
}

#[test]
fn watch_flip_updates_the_incremental_report_by_exactly_one_link() {
    // large enough that the dataset surfaces the paper's ~16% final-200
    // tail (a 40-link corpus can come up empty)
    let cfg = ScenarioConfig {
        rot_links: 400,
        ..ScenarioConfig::small(7)
    };
    let mut scenario = Scenario::generate(cfg);
    let study = scenario.config.study_time;

    // Find a batch-dataset link that answers 200 at study time — the same
    // dataset formula the service builds, so the watched URL resolves to a
    // dataset index and has a memoized finding to maintain.
    let category = scenario.wiki.permanently_dead_category().len();
    let dataset = Dataset::alphabetical(
        &scenario.wiki,
        (category * 6 / 10).max(1),
        scenario.config.sample_size,
        scenario.config.seed ^ 0xA1,
    );
    let target = dataset
        .entries
        .iter()
        .map(|e| e.url.clone())
        .find(|u| live_check(&scenario.web, u, study).is_final_200())
        .expect("a final-200 dataset link");

    // script its site dark for exactly [study+1d, study+3d)
    let site_id = scenario
        .web
        .site_by_host(target.host(), study)
        .expect("target host resolves")
        .id;
    let dark_from = study + Duration::days(1);
    let dark_to = study + Duration::days(3);
    scenario.web.site_mut(site_id).unwrap().faults =
        FaultProfile::none(site_id.0).with_window(dark_from, dark_to, Fault::Unavailable);
    assert!(live_check(&scenario.web, &target, study).is_final_200());
    assert!(!live_check(&scenario.web, &target, dark_from).is_final_200());

    let service = AuditService::over(scenario, CacheConfig::default());
    let handle = start(
        service,
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            debug_endpoints: true,
            watch: WatchConfig {
                policy: PolicySpec::IabotStrikes {
                    strikes: 2,
                    min_span: Duration::days(1),
                },
                cadence: Cadence::Fixed { every: Duration::days(1) },
                sim_secs_per_real_sec: 0, // frozen; advanced via /debug
                host_budget_per_day: None,
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // baseline: first /report builds the engine with one full pass
    let (status, report) = get(addr, "/report");
    assert!(status.contains("200"), "{status}: {report}");
    let n = json_num(&report, "n");
    let baseline_200 = json_num(&report, "final_200");
    assert!(n > 0 && baseline_200 > 0, "{report}");

    // watch the dataset link; day 0 check succeeds (no transition, no work)
    let (_, body) = post(addr, "/watch", &format!("{target}\n"));
    assert!(body.contains("\"registered\":1"), "{body}");
    poll(addr, "/watchlist", "first check lands", |b| b.contains("\"checks\":1"));
    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "permadead_reaudit_links_total"), 0.0);

    // day 1: strike one (still no transition). day 2: tagged — the dirty
    // set hands the link to the incremental engine, which re-runs ONLY it
    // at the tag instant and folds the delta into the report.
    get(addr, "/debug/watch-advance?secs=86400");
    poll(addr, "/watchlist", "strike one", |b| b.contains("\"checks\":2"));
    get(addr, "/debug/watch-advance?secs=86400");
    poll(addr, "/watchlist", "tagged", |b| b.contains("\"state\":\"tagged\""));
    let report = poll(addr, "/report", "final_200 drops by one", |b| {
        json_num(b, "final_200") == baseline_200 - 1
    });
    assert_eq!(json_num(&report, "n"), n, "n is run-level, not a delta casualty");
    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "permadead_reaudit_links_total"), 1.0, "one link, not a full study");
    assert_eq!(metric_value(&metrics, "permadead_reaudit_changed_total"), 1.0);

    // day 3: the window closed; revival flips it back and the report
    // returns to the baseline exactly.
    get(addr, "/debug/watch-advance?secs=86400");
    poll(addr, "/watchlist", "revived", |b| b.contains("\"revivals\":1"));
    poll(addr, "/report", "final_200 restored", |b| {
        json_num(b, "final_200") == baseline_200
    });
    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "permadead_reaudit_links_total"), 2.0);
    assert_eq!(metric_value(&metrics, "permadead_reaudit_changed_total"), 2.0);

    handle.shutdown();
}
