//! End-to-end tests for the sharded multi-reactor server: `--reactors N`
//! must change *throughput structure* (N listeners / N connection tables),
//! never *answers*. Verdicts, cache accounting, and the per-reactor metric
//! breakdown are checked against a single-reactor twin, in both listener
//! layouts (SO_REUSEPORT group and the sharded accept hand-off fallback),
//! plus the graceful drain on shutdown.

use permadead_serve::{start, AuditService, CacheConfig, ServerConfig, ServerHandle};
use permadead_sim::ScenarioConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn metric_value(metrics_body: &str, series: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(series) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("series {series} not found"))
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let cfg = ScenarioConfig {
        rot_links: 40,
        ..ScenarioConfig::small(7)
    };
    let service = AuditService::new(cfg, CacheConfig::default());
    start(service, config).expect("server starts")
}

/// The acceptance bar: a 2-reactor server answers every `/check` with the
/// byte-identical verdict a 1-reactor server gives, and — because the
/// consistent-hash cache partition is a pure function of the URL — the
/// cache hit/miss ledger lands on identical totals for the same traffic.
#[test]
fn two_reactors_match_single_reactor_verdicts_and_cache_ledger() {
    let single = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let sharded = spawn_server(ServerConfig {
        workers: 2,
        reactors: 2,
        ..ServerConfig::default()
    });
    assert_eq!(sharded.reactor_count(), 2);

    let urls = single.service().sample_urls(24);
    assert!(!urls.is_empty());
    // two passes: the first misses and fills, the second must hit
    for _pass in 0..2 {
        for url in &urls {
            let path = format!("/check?url={}", percent_encode(url));
            let (s1, b1) = get(single.addr(), &path);
            let (s2, b2) = get(sharded.addr(), &path);
            assert!(s1.contains("200"), "{s1}");
            assert_eq!(s1, s2);
            assert_eq!(b1, b2, "verdict diverged for {url}");
        }
    }
    let a = single.service().cache_stats();
    let b = sharded.service().cache_stats();
    assert_eq!((a.hits, a.misses), (b.hits, b.misses), "cache ledger diverged");
    assert_eq!(a.hits, urls.len() as u64, "second pass should hit every URL");

    // the sharded server's healthz advertises its reactor count
    let (_, health) = get(sharded.addr(), "/healthz");
    assert!(health.contains("\"reactors\":2"), "{health}");
    single.shutdown();
    sharded.shutdown();
}

/// The SO_REUSEPORT group actually engages on Linux, and every accepted
/// connection is owned by exactly one reactor: per-reactor accepted_total
/// sums to the aggregate open+closed connection count.
#[test]
fn reuseport_group_engages_and_accounts_every_connection() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        reactors: 2,
        ..ServerConfig::default()
    });
    assert!(handle.reuseport_active(), "SO_REUSEPORT should engage on Linux");

    for _ in 0..20 {
        let (status, _) = get(handle.addr(), "/healthz");
        assert!(status.contains("200"), "{status}");
    }
    let (_, metrics) = get(handle.addr(), "/metrics");
    let r0 = metric_value(&metrics, "permadead_serve_reactor_accepted_total{reactor=\"0\"}");
    let r1 = metric_value(&metrics, "permadead_serve_reactor_accepted_total{reactor=\"1\"}");
    // 21 accepted so far (the /metrics one may not have counted itself yet)
    assert!(
        r0 + r1 >= 21.0,
        "per-reactor accepts must cover all connections: {r0} + {r1}"
    );
    handle.shutdown();
}

/// With `reuseport: false` the fallback engages: reactor 0 owns the only
/// listener and deals sockets round-robin, so BOTH reactors end up serving
/// — and answers still match the single-reactor world.
#[test]
fn handoff_fallback_spreads_connections_and_serves_correctly() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        reactors: 2,
        reuseport: false,
        ..ServerConfig::default()
    });
    assert!(!handle.reuseport_active());

    let urls = handle.service().sample_urls(8);
    for url in &urls {
        let path = format!("/check?url={}", percent_encode(url));
        let (status, body) = get(handle.addr(), &path);
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"url\""), "{body}");
    }
    for _ in 0..12 {
        let (status, _) = get(handle.addr(), "/healthz");
        assert!(status.contains("200"), "{status}");
    }
    let (_, metrics) = get(handle.addr(), "/metrics");
    let r0 = metric_value(&metrics, "permadead_serve_reactor_accepted_total{reactor=\"0\"}");
    let r1 = metric_value(&metrics, "permadead_serve_reactor_accepted_total{reactor=\"1\"}");
    // strict round-robin: 20+ connections so far split ~evenly
    assert!(r0 >= 9.0, "reactor 0 starved: {r0} vs {r1}");
    assert!(r1 >= 9.0, "reactor 1 starved: {r0} vs {r1}");
    let d0 = metric_value(&metrics, "permadead_serve_reactor_dispatched_total{reactor=\"0\"}");
    let d1 = metric_value(&metrics, "permadead_serve_reactor_dispatched_total{reactor=\"1\"}");
    assert!(d0 >= 1.0 && d1 >= 1.0, "both reactors must dispatch work: {d0}/{d1}");
    handle.shutdown();
}

/// Graceful drain: a request already dispatched to a worker when shutdown
/// begins still gets its response; idle connections close immediately, so
/// the whole drain finishes well under the deadline.
#[test]
fn shutdown_drains_inflight_request_before_teardown() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        reactors: 2,
        debug_endpoints: true,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // an idle keep-alive connection: owes nothing, must be closed promptly
    let mut idle = TcpStream::connect(addr).expect("idle connect");
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // a request that will still be computing when shutdown starts
    let inflight = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /debug/sleep?ms=600 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        response
    });
    // let the request reach a worker before pulling the plug
    std::thread::sleep(Duration::from_millis(200));

    let begun = Instant::now();
    handle.shutdown();
    let took = begun.elapsed();

    let response = inflight.join().expect("inflight thread");
    assert!(response.contains("200"), "in-flight request dropped: {response:?}");
    assert!(response.contains("slept"), "{response:?}");
    // drain waited for the ~600ms sleep but nowhere near the 2s deadline
    assert!(took < Duration::from_millis(1900), "drain overshot: {took:?}");

    // the idle connection was closed by the drain, not left hanging
    let mut buf = [0u8; 16];
    let n = idle.read(&mut buf).expect("idle read after shutdown");
    assert_eq!(n, 0, "idle connection should see EOF");
}
