//! Pinned-seed golden: for seed 42, the snapshot round-trip —
//! generate → lower → save → load → audit — must reproduce the direct
//! generate → audit study bit for bit, and the incremental engine over the
//! loaded world must maintain that same report through a full re-audit.

use permadead_core::{Dataset, IncrementalAudit, Study, StudyOptions};
use permadead_serve::world_from_scenario;
use permadead_sim::{Scenario, ScenarioConfig};
use permadead_worldstore::World;

#[test]
fn pinned_seed_snapshot_round_trip_reproduces_the_generated_audit() {
    let cfg = ScenarioConfig { rot_links: 400, ..ScenarioConfig::small(42) };
    let scenario = Scenario::generate(cfg.clone());

    // the direct path: generate → audit
    let category = scenario.wiki.permanently_dead_category().len();
    let march = Dataset::alphabetical(
        &scenario.wiki,
        (category * 6 / 10).max(1),
        cfg.sample_size,
        cfg.seed ^ 0xA1,
    );
    let direct = Study::run_with(
        &scenario.web,
        &scenario.archive,
        &march,
        cfg.study_time,
        StudyOptions::default(),
    );

    // the snapshot path: lower → save → load → audit
    let dir = std::env::temp_dir().join(format!("pdw-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden.pdw");
    world_from_scenario(scenario, "small").save(&path).unwrap();
    let world = World::load(&path).unwrap();
    assert_eq!(world.meta.seed, 42);

    let decoded = Dataset::from_table(&world.march, &world.interner);
    assert_eq!(march.entries, decoded.entries, "the march dataset survives the table codec");
    let loaded = Study::run_with(
        &world.web,
        &world.archive,
        &decoded,
        world.meta.study_time,
        StudyOptions::default(),
    );
    assert_eq!(direct.findings, loaded.findings, "per-link findings are bit-identical");
    assert_eq!(direct.report(), loaded.report());

    // and the incremental engine over the loaded world: the maintained
    // report equals the direct study's, and stays equal through a full
    // re-audit of every link at the same clock (which changes nothing)
    let mut audit = IncrementalAudit::build(
        &world.web,
        &world.archive,
        &decoded,
        world.meta.study_time,
        StudyOptions::default(),
    );
    assert_eq!(audit.report(), direct.report());
    let all: Vec<usize> = (0..decoded.len()).collect();
    let outcome = audit.reaudit_indices(&world.web, &world.archive, &all, world.meta.study_time);
    assert_eq!(outcome.reaudited, decoded.len());
    assert_eq!(outcome.changed, 0, "an unchanged world re-audits to the same verdicts");
    assert_eq!(audit.report(), direct.report());

    std::fs::remove_dir_all(&dir).unwrap();
}
