//! End-to-end test of the continuous-monitoring subsystem: register a link
//! that goes dark after the study snapshot, watch it climb the strike
//! ladder to a permanently-dead tag, then come back — the §3 "genuinely
//! alive again" flap — with exact counter parity across `/watchlist`,
//! `/metrics`, and `/healthz`.
//!
//! The watch clock is frozen (`sim_secs_per_real_sec: 0`) and advanced
//! manually through `/debug/watch-advance`, so every transition happens at
//! an exact simulated instant and the test is deterministic.

use permadead_core::live_check;
use permadead_net::fault::{Fault, FaultProfile};
use permadead_net::Duration;
use permadead_sched::{Cadence, PolicySpec};
use permadead_serve::{start, AuditService, CacheConfig, ServerConfig, WatchConfig};
use permadead_sim::{Scenario, ScenarioConfig};
use permadead_url::Url;
use std::io::{Read, Write};
use std::net::TcpStream;

fn request(addr: std::net::SocketAddr, raw: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (String, String, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

fn metric_value(metrics_body: &str, name: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

/// Poll `/watchlist` until `pred` holds (the pump ticks every 25ms, so the
/// state lands shortly after an advance; 2s is a generous ceiling).
fn poll_watchlist(
    addr: std::net::SocketAddr,
    what: &str,
    pred: impl Fn(&str) -> bool,
) -> String {
    let mut last = String::new();
    for _ in 0..200 {
        let (_, _, body) = get(addr, "/watchlist");
        if pred(&body) {
            return body;
        }
        last = body;
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("watchlist never reached: {what}\nlast seen: {last}");
}

#[test]
fn watched_link_flaps_through_tag_and_revival_with_counter_parity() {
    let cfg = ScenarioConfig {
        rot_links: 40,
        ..ScenarioConfig::small(7)
    };
    let mut scenario = Scenario::generate(cfg);
    let study = scenario.config.study_time;

    // pick a page that answers 200 at study time (hosts sorted so the pick
    // is deterministic), then script its site dark for exactly the
    // half-open window [study+1d, study+3d)
    let mut hosts: Vec<String> = scenario.web.sites().map(|s| s.host.clone()).collect();
    hosts.sort();
    let target = hosts
        .iter()
        .find_map(|host| {
            let site = scenario.web.site_by_host(host, study)?;
            site.pages().iter().find_map(|p| {
                let url = Url::parse(&format!("http://{}{}", host, p.initial_path)).ok()?;
                live_check(&scenario.web, &url, study)
                    .is_final_200()
                    .then_some(url)
            })
        })
        .expect("an alive page in the simulated web");
    let site_id = scenario
        .web
        .site_by_host(target.host(), study)
        .expect("target host resolves")
        .id;
    let dark_from = study + Duration::days(1);
    let dark_to = study + Duration::days(3);
    scenario.web.site_mut(site_id).unwrap().faults =
        FaultProfile::none(site_id.0).with_window(dark_from, dark_to, Fault::Unavailable);
    assert!(live_check(&scenario.web, &target, study).is_final_200());
    assert!(!live_check(&scenario.web, &target, dark_from).is_final_200());
    assert!(live_check(&scenario.web, &target, dark_to).is_final_200(), "window is half-open");

    let service = AuditService::over(scenario, CacheConfig::default());
    let handle = start(
        service,
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            debug_endpoints: true,
            watch: WatchConfig {
                policy: PolicySpec::IabotStrikes {
                    strikes: 2,
                    min_span: Duration::days(1),
                },
                cadence: Cadence::Fixed { every: Duration::days(1) },
                sim_secs_per_real_sec: 0, // frozen; advanced via /debug
                host_budget_per_day: None,
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // register: one valid URL, one garbage line
    let (status, _, body) = post(addr, "/watch", &format!("{target}\nnot a url\n"));
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("\"registered\":1"), "{body}");
    assert!(body.contains("\"invalid\":1"), "{body}");
    assert!(body.contains("\"watchlist\":1"), "{body}");
    // idempotent: re-registering must not double the cadence
    let (_, _, body) = post(addr, "/watch", &format!("{target}\n"));
    assert!(body.contains("\"registered\":0"), "{body}");
    assert!(body.contains("\"watchlist\":1"), "{body}");

    // day 0: the first check comes due at registration time and succeeds
    let body = poll_watchlist(addr, "first check lands", |b| b.contains("\"checks\":1"));
    assert!(body.contains("\"state\":\"healthy\""), "{body}");
    assert!(body.contains("\"strikes\":0"), "{body}");
    assert!(body.contains("\"policy\":\"iabot-strikes\""), "{body}");
    assert!(body.contains("\"states\":{\"healthy\":1,\"suspicious\":0,\"quarantined\":0,\"tagged\":0}"), "{body}");

    // day 1: the site is dark — strike one, the link turns suspicious
    get(addr, "/debug/watch-advance?secs=86400");
    let body = poll_watchlist(addr, "strike one", |b| b.contains("\"checks\":2"));
    assert!(body.contains("\"strikes\":1"), "{body}");
    assert!(body.contains("\"state\":\"suspicious\""), "{body}");
    assert!(body.contains("\"states\":{\"healthy\":0,\"suspicious\":1,\"quarantined\":0,\"tagged\":0}"), "{body}");

    // day 2: strike two, and the span since strike one is 1d >= min_span —
    // the link is tagged permanently dead
    get(addr, "/debug/watch-advance?secs=86400");
    let body = poll_watchlist(addr, "tagged", |b| b.contains("\"state\":\"tagged\""));
    assert!(body.contains("\"checks\":3"), "{body}");
    assert!(body.contains("\"strikes\":2"), "{body}");
    assert!(body.contains("\"tagged\":1"), "{body}");
    assert!(body.contains("\"tagged_at\":"), "{body}");

    // day 3: the outage window has closed — the tagged link answers 200
    // again and is recorded as a revival (§3's "genuinely alive again")
    get(addr, "/debug/watch-advance?secs=86400");
    let body = poll_watchlist(addr, "revived", |b| b.contains("\"revivals\":1"));
    assert!(body.contains("\"state\":\"healthy\""), "{body}");
    assert!(body.contains("\"strikes\":0"), "{body}");
    assert!(body.contains("\"checks\":4"), "{body}");
    assert!(body.contains("\"tagged\":0"), "{body}");

    // exact counter parity: /metrics, the scheduler snapshot, and the
    // timeline above must all agree
    let snap = handle.watch_snapshot();
    assert_eq!(snap.counters.checks, 4);
    assert_eq!(snap.counters.due, 4);
    assert_eq!(snap.counters.tagged, 1);
    assert_eq!(snap.counters.revived, 1);
    assert_eq!(snap.counters.deferred, 0);
    assert_eq!(snap.watchlist, 1);
    assert_eq!(snap.tagged_now, 0);
    assert_eq!(snap.policy, "iabot-strikes");
    assert_eq!(snap.states.healthy, 1);
    assert_eq!(snap.states.total(), snap.watchlist);
    let (_, _, metrics) = get(addr, "/metrics");
    assert_eq!(metric_value(&metrics, "permadead_watch_due_total"), 4.0);
    assert_eq!(metric_value(&metrics, "permadead_watch_checks_total"), 4.0);
    assert_eq!(metric_value(&metrics, "permadead_watch_tagged_total"), 1.0);
    assert_eq!(metric_value(&metrics, "permadead_watch_revived_total"), 1.0);
    assert_eq!(metric_value(&metrics, "permadead_watch_deferred_total"), 0.0);
    assert_eq!(metric_value(&metrics, "permadead_watchlist_size"), 1.0);
    assert_eq!(metric_value(&metrics, "permadead_watch_tagged_links"), 0.0);
    assert_eq!(metric_value(&metrics, "permadead_watch_queue_depth"), 1.0, "next check queued");
    // the state-distribution gauges mirror Scheduler::snapshot() exactly
    assert_eq!(
        metric_value(&metrics, "permadead_watch_state{state=\"healthy\"}"),
        snap.states.healthy as f64
    );
    assert_eq!(
        metric_value(&metrics, "permadead_watch_state{state=\"suspicious\"}"),
        snap.states.suspicious as f64
    );
    assert_eq!(
        metric_value(&metrics, "permadead_watch_state{state=\"quarantined\"}"),
        snap.states.quarantined as f64
    );
    assert_eq!(
        metric_value(&metrics, "permadead_watch_state{state=\"tagged\"}"),
        snap.states.tagged as f64
    );
    assert_eq!(metric_value(&metrics, "permadead_watch_policy{policy=\"iabot-strikes\"}"), 1.0);
    assert!(metric_value(&metrics, "permadead_requests_total{endpoint=\"watch\"}") >= 2.0);
    assert!(metric_value(&metrics, "permadead_requests_total{endpoint=\"watchlist\"}") >= 4.0);

    // /healthz surfaces the watchlist size
    let (_, _, health) = get(addr, "/healthz");
    assert!(health.contains("\"watchlist\":1"), "{health}");

    handle.shutdown();
}

#[test]
fn watch_rejects_empty_and_oversized_bodies() {
    let cfg = ScenarioConfig {
        rot_links: 40,
        ..ScenarioConfig::small(7)
    };
    let service = AuditService::new(cfg, CacheConfig::default());
    let handle = start(
        service,
        ServerConfig {
            workers: 1,
            max_batch: 2,
            watch: WatchConfig {
                sim_secs_per_real_sec: 0,
                ..WatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    let (status, _, _) = post(addr, "/watch", "");
    assert!(status.contains("400"), "{status}");
    let (status, _, body) =
        post(addr, "/watch", "http://a.org/1\nhttp://a.org/2\nhttp://a.org/3\n");
    assert!(status.contains("413"), "{status}: {body}");
    // wrong method
    let (status, _, _) = get(addr, "/watch");
    assert!(status.contains("404") || status.contains("405"), "{status}");
    let (status, _, _) = post(addr, "/watchlist", "x");
    assert!(status.contains("405"), "{status}");

    handle.shutdown();
}
