//! The fault campaign: drive `permadead-serve` over loopback TCP against a
//! world whose target origins misbehave, and measure what a retry policy
//! buys — and what it provably cannot.
//!
//! Three servers over the *same* seeded world:
//!
//! - **A** — fault-free, single attempt: the ground-truth baseline.
//! - **B** — faulted origins, single attempt (IABot's behaviour): transient
//!   faults land directly in the Figure-4 verdicts.
//! - **C** — the same faulted origins, retries enabled: transient faults are
//!   re-drawn per attempt, so most verdicts flip back to the baseline, while
//!   attempt-independent faults (an exhausted daily budget) demonstrably
//!   stay broken no matter how many retries are spent.
//!
//! Every fault draw is keyed `(seed, url, day, attempt)`, so the whole
//! campaign is deterministic: the test asserts the *exact* per-cause retry
//! counters scraped from `/metrics` against a local replay of the same
//! policy over the same world.

use permadead_net::fault::FaultProfile;
use permadead_net::RetryPolicy;
use permadead_serve::{start, AuditService, CacheConfig, ServerConfig, ServerHandle};
use permadead_sim::{Scenario, ScenarioConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

const RETRY_SEED: u64 = 0xFA;
const FAULT_SEED: u64 = 0xFA17;

fn world_config() -> ScenarioConfig {
    ScenarioConfig {
        rot_links: 160,
        ..ScenarioConfig::small(7)
    }
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn metric_value(metrics_body: &str, name: &str) -> f64 {
    metrics_body
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

/// `"live_status"` out of a `/check` body — the Figure-4 verdict the
/// campaign compares across servers.
fn live_status_of(body: &str) -> String {
    let needle = "\"live_status\":\"";
    let start = body.find(needle).unwrap_or_else(|| panic!("no live_status in {body}")) + needle.len();
    let end = body[start..].find('"').expect("unterminated live_status") + start;
    body[start..end].to_string()
}

fn check(addr: std::net::SocketAddr, url: &str) -> String {
    let (status, body) = get(addr, &format!("/check?url={}", percent_encode(url)));
    assert!(status.contains("200"), "{status}: {body}");
    body
}

fn spawn(service: AuditService) -> ServerHandle {
    start(
        service,
        ServerConfig {
            workers: 1,
            queue_cap: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// The fault class each campaign target's origin is put into.
#[derive(Clone, Copy)]
enum Campaign {
    /// Connections hang 70% of the time — retryable, usually rescued.
    Timeouts,
    /// 503s 70% of the time — retryable, usually rescued.
    Unavailable,
    /// Daily budget of zero — every attempt 429s; retries cannot help.
    RateLimited,
}

impl Campaign {
    fn of(index: usize) -> Campaign {
        match index % 3 {
            0 => Campaign::Timeouts,
            1 => Campaign::Unavailable,
            _ => Campaign::RateLimited,
        }
    }

    fn profile(self, seed: u64) -> FaultProfile {
        match self {
            Campaign::Timeouts => FaultProfile::none(seed).with_timeouts(0.7),
            Campaign::Unavailable => FaultProfile::none(seed).with_unavailable(0.7),
            Campaign::RateLimited => FaultProfile::none(seed).with_daily_rate_limit(0),
        }
    }
}

/// Break the origins of `targets` in `scenario`, identically for every
/// caller: the profile seed depends only on the site id.
fn inject_faults(scenario: &mut Scenario, targets: &[(String, Campaign)]) {
    let study = scenario.config.study_time;
    for (url, campaign) in targets {
        let host = permadead_url::Url::parse(url).expect("target parses").host().to_string();
        let Some(id) = scenario.web.site_by_host(&host, study).map(|s| s.id) else {
            panic!("target host {host} has no live site");
        };
        let site = scenario.web.site_mut(id).expect("site exists");
        site.faults = campaign.profile(id.0 ^ FAULT_SEED);
    }
}

/// A flapping origin burns through its retry budget; a calm one never does.
/// The budget ledger must refuse retries — and export the refusals — for the
/// flapping host *only*.
#[test]
fn origin_retry_budget_exhausts_only_for_the_flapping_host() {
    // pick two dataset URLs on distinct, resolving origins
    let probe = Scenario::generate(world_config());
    let study = probe.config.study_time;
    let dataset = permadead_core::Dataset::alphabetical(
        &probe.wiki,
        (probe.wiki.permanently_dead_category().len() * 6 / 10).max(1),
        probe.config.sample_size,
        probe.config.seed ^ 0xA1,
    );
    let mut hosts: Vec<String> = Vec::new();
    for e in &dataset.entries {
        let host = e.url.host().to_string();
        if hosts.contains(&host) || probe.web.site_by_host(&host, study).is_none() {
            continue;
        }
        hosts.push(host);
        if hosts.len() == 2 {
            break;
        }
    }
    let [flappy, calm] = hosts.try_into().expect("world too small for two origins");

    let mut scenario = Scenario::generate(world_config());
    inject_faults(
        &mut scenario,
        &[(format!("http://{flappy}/"), Campaign::Timeouts)],
    );
    // budget 1ms: the first probe that schedules any backoff at all exhausts
    // the flapping origin; every later check against it is refused + counted
    let service = AuditService::over(scenario, CacheConfig::default())
        .with_retry(RetryPolicy::standard(4, RETRY_SEED))
        .with_origin_retry_budget_ms(Some(1));
    let server = spawn(service);

    // distinct paths per request so the verdict cache never short-circuits
    // the budget bookkeeping; the 70%-timeout origin retries almost surely
    // within the first few probes, the calm one never does
    for i in 0..8 {
        check(server.addr(), &format!("http://{flappy}/budget-probe-{i}"));
        check(server.addr(), &format!("http://{calm}/budget-probe-{i}"));
    }

    let (_, metrics) = get(server.addr(), "/metrics");
    let series: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("permadead_origin_retry_budget_exhausted_total{"))
        .collect();
    assert_eq!(
        series.len(),
        1,
        "exactly one origin must exhaust its budget: {series:?}"
    );
    let refused = metric_value(
        &metrics,
        &format!("permadead_origin_retry_budget_exhausted_total{{host=\"{flappy}\"}}"),
    );
    assert!(refused >= 1.0, "flapping host never got refused: {metrics}");
    assert!(
        !metrics.contains(&format!("host=\"{calm}\"")),
        "calm host {calm} was charged budget refusals"
    );
    server.shutdown();
}

#[test]
fn fault_campaign_retries_bound_verdict_flips_and_counters_match_exactly() {
    // ---- server A: the fault-free baseline --------------------------------
    let a = spawn(AuditService::new(world_config(), CacheConfig::default()));

    // Campaign targets: dataset URLs whose origin still resolves (faults act
    // at the origin, so a lapsed-DNS link can never observe one), spread
    // round-robin over the three fault classes.
    let candidates: Vec<String> = a
        .service()
        .dataset()
        .entries
        .iter()
        .map(|e| e.url.to_string())
        .collect();
    let mut targets: Vec<(String, Campaign)> = Vec::new();
    let mut baseline: Vec<String> = Vec::new();
    let mut seen_hosts = std::collections::HashSet::new();
    for url in &candidates {
        if targets.len() == 9 {
            break;
        }
        let host = permadead_url::Url::parse(url).unwrap().host().to_string();
        if !seen_hosts.insert(host) {
            continue; // one target per origin keeps the fault classes clean
        }
        let body = check(a.addr(), url);
        let status = live_status_of(&body);
        // a campaign target must (a) resolve, so origin faults can act, and
        // (b) have a definitive baseline verdict distinct from every fault
        // symptom (Timeout / 503-or-429 "Other"), so a flip is unambiguous
        if status != "200" && status != "404" {
            continue;
        }
        targets.push((url.clone(), Campaign::of(targets.len())));
        baseline.push(status);
    }
    assert_eq!(targets.len(), 9, "world too small for the campaign");
    a.shutdown();

    // ---- servers B and C: identical faulted worlds ------------------------
    let mut scenario_b = Scenario::generate(world_config());
    inject_faults(&mut scenario_b, &targets);
    let b = spawn(AuditService::over(scenario_b, CacheConfig::default()));

    let retry = RetryPolicy::standard(4, RETRY_SEED);
    let mut scenario_c = Scenario::generate(world_config());
    inject_faults(&mut scenario_c, &targets);
    let c = spawn(AuditService::over(scenario_c, CacheConfig::default()).with_retry(retry));

    let statuses_b: Vec<String> =
        targets.iter().map(|(u, _)| live_status_of(&check(b.addr(), u))).collect();
    let statuses_c: Vec<String> =
        targets.iter().map(|(u, _)| live_status_of(&check(c.addr(), u))).collect();

    // ---- the verdict-flip ledger ------------------------------------------
    let flips = |statuses: &[String]| -> usize {
        statuses.iter().zip(&baseline).filter(|(s, b)| s != b).count()
    };
    let flips_b = flips(&statuses_b);
    let flips_c = flips(&statuses_c);

    // no-retry demonstrably misclassifies: transient faults land in verdicts
    assert!(flips_b >= 3, "faults flipped only {flips_b}/9 verdicts: {statuses_b:?}");
    // retries keep the damage bounded — strictly fewer flips than no-retry
    assert!(
        flips_c < flips_b,
        "retries did not reduce flips: {flips_c} vs {flips_b} ({statuses_c:?})"
    );
    // ...but they cannot rescue an attempt-independent fault: every
    // rate-limited target flips on both servers, retries or not
    for (i, (url, campaign)) in targets.iter().enumerate() {
        if matches!(campaign, Campaign::RateLimited) {
            assert_ne!(statuses_b[i], baseline[i], "{url} dodged its rate limit");
            assert_ne!(statuses_c[i], baseline[i], "{url} dodged its rate limit with retries");
        }
    }

    // ---- exact counters: /metrics vs a local replay -----------------------
    // B never retries: its counters must be exactly zero.
    let (_, metrics_b) = get(b.addr(), "/metrics");
    for (label, _) in permadead_net::RetryCounts::default().per_cause() {
        assert_eq!(
            metric_value(&metrics_b, &format!("permadead_retries_total{{cause=\"{label}\"}}")),
            0.0,
            "single-attempt server counted {label} retries"
        );
    }
    assert_eq!(metric_value(&metrics_b, "permadead_retry_exhausted_total"), 0.0);
    b.shutdown();

    // C's counters must equal, per cause, a local replay of the same policy
    // over the same world — the fault draws are pure in (url, day, attempt).
    let mut expected = permadead_net::RetryCounts::default();
    let study = c.service().study_time();
    for (url, _) in &targets {
        let parsed = permadead_url::Url::parse(url).unwrap();
        let (_, outcome) = permadead_core::live_check_with_retry(
            &c.service().scenario().web,
            &parsed,
            study,
            &retry,
        );
        expected.add(outcome.counts);
    }
    assert!(expected.total() > 0, "the campaign provoked no retries at all");

    let (_, metrics_c) = get(c.addr(), "/metrics");
    for (label, want) in expected.per_cause() {
        assert_eq!(
            metric_value(&metrics_c, &format!("permadead_retries_total{{cause=\"{label}\"}}")),
            want as f64,
            "cause {label} diverged from the local replay"
        );
    }
    assert_eq!(
        metric_value(&metrics_c, "permadead_retry_exhausted_total"),
        expected.exhausted as f64,
        "exhaustion count diverged from the local replay"
    );
    // the rate-limited targets are the exhaustion: 3 targets × 1 schedule
    assert!(expected.exhausted >= 3, "rate-limited targets must exhaust their schedules");
    c.shutdown();
}
