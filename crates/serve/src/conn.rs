//! The per-connection read/write state machine the reactor drives.
//!
//! Each accepted socket owns a [`Conn`]: an accumulating read buffer fed
//! through the incremental parser in [`crate::wire`], and a write buffer
//! with an explicit offset so a response survives any number of partial
//! (`EAGAIN`) writes. The reactor calls [`Conn::read_step`] /
//! [`Conn::write_step`] on readiness and interprets the returned step —
//! this module never touches epoll, which keeps the state machine testable
//! over any `Read + Write` (the unit tests drive it with a scripted stream
//! that blocks and dies on command).
//!
//! The state ladder, one request at a time:
//!
//! ```text
//!          bytes                    complete request
//! Reading ───────► Reading ───────────────────────────► Dispatched
//!    ▲                │  parse error / EOF / overload        │ worker done
//!    │                ▼                                      ▼
//!    │            Writing{close_after:true}              Writing{close_after}
//!    │                │                                      │
//!    │                ▼ flushed                              ▼ flushed
//!    │              close                 keep-alive: back to Reading ──┐
//!    └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! A stalled client therefore holds exactly one buffer and one fd — never
//! a worker thread.

use crate::wire::{parse_request, HttpRequest, Parse, WireError, MAX_BODY_BYTES, MAX_HEADER_BYTES};
use std::io::{ErrorKind, Read, Write};
use std::time::Instant;

/// Upper bound on bytes buffered from one connection: one maximal request
/// plus one maximal pipelined follow-up's headers. The parser flags
/// anything that can never become a valid request long before this.
const READ_BUF_CAP: usize = MAX_HEADER_BYTES + MAX_BODY_BYTES + MAX_HEADER_BYTES;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Accumulating request bytes; interested in readability.
    Reading,
    /// A complete request is with the worker pool; no socket interest
    /// (errors and hangups still surface through the poll).
    Dispatched,
    /// Flushing `write_buf`; interested in writability.
    Writing { close_after: bool },
}

/// One connection: socket, buffers, and the state ladder.
pub struct Conn<S> {
    pub stream: S,
    /// Slab generation at insert; completions carry it so a worker's
    /// response can never land on a recycled slot's new occupant.
    pub generation: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    pub state: ConnState,
    /// Set when a request is dispatched; the latency sample runs from here
    /// to the response's final flushed byte.
    pub started: Option<Instant>,
    /// Peer sent FIN: serve what is buffered, then close instead of
    /// returning to `Reading`.
    saw_eof: bool,
}

/// What a readiness-driven read produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadStep {
    /// Nothing actionable yet; stay readable.
    More,
    /// A complete request was parsed and drained from the buffer.
    Request(HttpRequest),
    /// The bytes can never become a request; answer `err.status()` and close.
    Bad(WireError),
    /// Peer closed cleanly with an empty buffer — just close.
    Closed,
}

/// What a readiness-driven write produced.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteStep {
    /// Every queued byte is flushed.
    Done,
    /// Socket back-pressure with bytes still queued; stay writable.
    Blocked,
    /// The connection died mid-response: `.0` bytes were never delivered.
    Aborted(usize),
}

impl<S: Read + Write> Conn<S> {
    pub fn new(stream: S, generation: u64) -> Conn<S> {
        Conn {
            stream,
            generation,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            state: ConnState::Reading,
            started: None,
            saw_eof: false,
        }
    }

    /// Pull every available byte off the socket (until `EAGAIN`, EOF, or
    /// the buffer cap), then try to parse. Call on readable readiness in
    /// [`ConnState::Reading`].
    pub fn read_step(&mut self) -> ReadStep {
        let mut chunk = [0u8; 8 * 1024];
        while self.read_buf.len() < READ_BUF_CAP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.saw_eof = true;
                    break;
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // reset / hard error: nothing to answer to
                Err(_) => return ReadStep::Closed,
            }
        }
        self.try_parse()
    }

    /// Attempt to parse a request from the already-buffered bytes (also the
    /// keep-alive path: a pipelined next request may be sitting in the
    /// buffer before any new readiness arrives).
    pub fn try_parse(&mut self) -> ReadStep {
        match parse_request(&self.read_buf) {
            Parse::Complete { request, consumed } => {
                // drain exactly the request's bytes; a pipelined follow-up
                // stays buffered for the next cycle
                self.read_buf.drain(..consumed);
                self.state = ConnState::Dispatched;
                self.started = Some(Instant::now());
                ReadStep::Request(request)
            }
            Parse::Bad(e) => ReadStep::Bad(e),
            Parse::Incomplete => {
                if self.saw_eof {
                    if self.read_buf.is_empty() {
                        ReadStep::Closed
                    } else {
                        // half a request then FIN: malformed
                        ReadStep::Bad(WireError::BadRequest)
                    }
                } else if self.read_buf.len() >= READ_BUF_CAP {
                    ReadStep::Bad(WireError::TooLarge)
                } else {
                    ReadStep::More
                }
            }
        }
    }

    /// Queue `bytes` as the response and enter `Writing`.
    pub fn queue_response(&mut self, bytes: Vec<u8>, close_after: bool) {
        self.write_buf = bytes;
        self.written = 0;
        self.state = ConnState::Writing {
            close_after: close_after || self.saw_eof,
        };
    }

    /// Push queued bytes at the socket until done or blocked, tracking the
    /// offset across calls — the partial-write bug the blocking path's
    /// `write_all` + write-timeout combination used to hide by silently
    /// truncating the response.
    pub fn write_step(&mut self) -> WriteStep {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return WriteStep::Aborted(self.write_buf.len() - self.written),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return WriteStep::Blocked,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return WriteStep::Aborted(self.write_buf.len() - self.written),
            }
        }
        let _ = self.stream.flush();
        WriteStep::Done
    }

    /// After a fully flushed response on a keep-alive connection: clear the
    /// response state and return to `Reading` for the next request.
    pub fn reset_for_next_request(&mut self) {
        self.write_buf = Vec::new();
        self.written = 0;
        self.started = None;
        self.state = ConnState::Reading;
    }

    /// Bytes queued but not yet flushed (0 when idle).
    pub fn unwritten(&self) -> usize {
        self.write_buf.len() - self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io;

    /// A stream whose behaviour is scripted per call: the read side serves
    /// chunks then EOF/EAGAIN, the write side accepts a few bytes at a
    /// time, blocks, or dies — the loopback failure modes, determinized.
    #[derive(Default)]
    struct Scripted {
        reads: VecDeque<io::Result<Vec<u8>>>,
        writes: VecDeque<io::Result<usize>>,
        sink: Vec<u8>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(Ok(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(e)) => Err(e),
                None => Err(io::Error::from(ErrorKind::WouldBlock)),
            }
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.writes.pop_front() {
                Some(Ok(n)) => {
                    let n = n.min(buf.len());
                    self.sink.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => Err(io::Error::from(ErrorKind::WouldBlock)),
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn wouldblock() -> io::Error {
        io::Error::from(ErrorKind::WouldBlock)
    }

    #[test]
    fn drip_fed_request_assembles_across_reads() {
        let mut conn = Conn::new(Scripted::default(), 0);
        let raw = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
        // one byte per readiness event, like a slow-loris that eventually
        // finishes
        for &b in &raw[..raw.len() - 1] {
            conn.stream.reads.push_back(Ok(vec![b]));
            conn.stream.reads.push_back(Err(wouldblock()));
            assert_eq!(conn.read_step(), ReadStep::More);
            assert_eq!(conn.state, ConnState::Reading);
        }
        conn.stream.reads.push_back(Ok(vec![raw[raw.len() - 1]]));
        match conn.read_step() {
            ReadStep::Request(req) => assert_eq!(req.path, "/healthz"),
            other => panic!("expected request, got {other:?}"),
        }
        assert_eq!(conn.state, ConnState::Dispatched);
        assert!(conn.started.is_some());
    }

    #[test]
    fn partial_writes_track_offset_and_deliver_everything() {
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.queue_response(b"HTTP/1.1 200 OK\r\n\r\nhello world".to_vec(), true);
        // the socket takes 5 bytes, blocks, takes 7, blocks, then the rest
        conn.stream.writes.push_back(Ok(5));
        conn.stream.writes.push_back(Err(wouldblock()));
        assert_eq!(conn.write_step(), WriteStep::Blocked);
        assert_eq!(conn.unwritten(), 25);
        conn.stream.writes.push_back(Ok(7));
        conn.stream.writes.push_back(Err(wouldblock()));
        assert_eq!(conn.write_step(), WriteStep::Blocked);
        conn.stream.writes.push_back(Ok(usize::MAX)); // take the rest
        assert_eq!(conn.write_step(), WriteStep::Done);
        assert_eq!(conn.unwritten(), 0);
        assert_eq!(conn.stream.sink, b"HTTP/1.1 200 OK\r\n\r\nhello world");
    }

    #[test]
    fn dead_socket_mid_write_reports_undelivered_bytes() {
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.queue_response(vec![b'x'; 100], true);
        conn.stream.writes.push_back(Ok(30));
        conn.stream.writes.push_back(Err(io::Error::from(ErrorKind::ConnectionReset)));
        match conn.write_step() {
            WriteStep::Aborted(undelivered) => assert_eq!(undelivered, 70),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_cycle_serves_pipelined_request_from_buffer() {
        let mut conn = Conn::new(Scripted::default(), 0);
        // two pipelined requests arrive in one read
        conn.stream
            .reads
            .push_back(Ok(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec()));
        match conn.read_step() {
            ReadStep::Request(req) => assert_eq!(req.path, "/a"),
            other => panic!("{other:?}"),
        }
        conn.queue_response(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n".to_vec(), false);
        conn.stream.writes.push_back(Ok(usize::MAX));
        assert_eq!(conn.write_step(), WriteStep::Done);
        conn.reset_for_next_request();
        // the second request is already buffered — no new readiness needed
        match conn.try_parse() {
            ReadStep::Request(req) => assert_eq!(req.path, "/b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_paths() {
        // clean close, nothing buffered
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.stream.reads.push_back(Ok(vec![]));
        assert_eq!(conn.read_step(), ReadStep::Closed);

        // half a request then FIN → 400
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.stream.reads.push_back(Ok(b"GET / HT".to_vec()));
        conn.stream.reads.push_back(Ok(vec![]));
        assert_eq!(conn.read_step(), ReadStep::Bad(WireError::BadRequest));

        // full request then FIN → served, but the response must close even
        // though HTTP/1.1 would default to keep-alive
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.stream.reads.push_back(Ok(b"GET /a HTTP/1.1\r\n\r\n".to_vec()));
        conn.stream.reads.push_back(Ok(vec![]));
        match conn.read_step() {
            ReadStep::Request(req) => assert!(req.keep_alive),
            other => panic!("{other:?}"),
        }
        conn.queue_response(b"x".to_vec(), false);
        assert_eq!(conn.state, ConnState::Writing { close_after: true });
    }

    #[test]
    fn hostile_bytes_map_to_wire_errors() {
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.stream.reads.push_back(Ok(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab".to_vec(),
        ));
        assert_eq!(conn.read_step(), ReadStep::Bad(WireError::BadRequest));

        let mut conn = Conn::new(Scripted::default(), 0);
        conn.stream
            .reads
            .push_back(Ok(format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1).into_bytes()));
        assert_eq!(conn.read_step(), ReadStep::Bad(WireError::TooLarge));
    }

    #[test]
    fn read_error_closes_silently() {
        let mut conn = Conn::new(Scripted::default(), 0);
        conn.stream.reads.push_back(Err(io::Error::from(ErrorKind::ConnectionReset)));
        assert_eq!(conn.read_step(), ReadStep::Closed);
    }
}
