//! Server-side observability: request counters, an in-flight gauge, a fixed-
//! bucket latency histogram, and the Prometheus text rendering that `/metrics`
//! serves.
//!
//! Everything here is shared across worker threads, so it is atomics and one
//! short-lived mutex (per-stage stats). The exposition format follows the
//! Prometheus 0.0.4 text conventions: `# HELP`/`# TYPE` preambles,
//! `_total` suffixes on counters, cumulative `le` buckets on the histogram.

use crate::cache::CacheStats;
use parking_lot::Mutex;
use permadead_core::StageStats;
use permadead_net::{Counter, MetricsSnapshot};
use permadead_sched::WatchSnapshot;
use std::sync::atomic::{AtomicI64, Ordering};

/// Histogram bucket upper bounds, in seconds. Audit queries on the simulated
/// world run in the micro-to-millisecond range; the tail buckets catch
/// queue-delayed requests under load.
pub const LATENCY_BUCKETS: [f64; 10] = [
    0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.05, 0.25, 1.0,
];

/// One endpoint's request counter, labeled by route.
pub struct EndpointCounter {
    pub route: &'static str,
    pub count: Counter,
}

/// One reactor thread's transport counters. With `--reactors N` every
/// reactor owns its own listener and connection table, so aggregate series
/// alone can't show a skewed accept split or one reactor monopolizing the
/// write-abort budget — these render as `permadead_serve_reactor_*`
/// series labeled `{reactor="k"}` next to the unlabeled aggregates.
#[derive(Default)]
pub struct ReactorMetrics {
    /// Connections this reactor accepted (or adopted via hand-off).
    pub accepted_total: Counter,
    /// Connections this reactor currently holds open.
    pub open_connections: AtomicI64,
    /// Responses this reactor failed to deliver.
    pub write_aborted_total: Counter,
    /// Requests this reactor dispatched into the worker pool.
    pub dispatched_total: Counter,
}

/// Shared server metrics. One instance per server, touched by every worker.
pub struct ServeMetrics {
    /// Requests fully handled, by route (`other` = 404s and bad requests).
    pub by_endpoint: Vec<EndpointCounter>,
    /// Responses by status code class we actually emit.
    pub responses_2xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
    /// Connections refused at admission (503 + Retry-After).
    pub rejected_total: Counter,
    /// Handler panics caught by the worker loop (the worker survives).
    pub worker_panics_total: Counter,
    /// Requests currently being processed by workers.
    pub inflight: AtomicI64,
    /// Links re-run by the incremental re-audit engine after watch flips.
    pub reaudit_links_total: Counter,
    /// Incremental re-runs whose memoized finding actually changed.
    pub reaudit_changed_total: Counter,
    /// Fresh checks whose rediscovery stage validated a new live URL.
    pub rescue_rescued_total: Counter,
    /// Responses the reactor could not deliver: the connection died (or was
    /// reclaimed) with bytes still queued — each one is work a worker did
    /// that no client received.
    pub write_aborted_total: Counter,
    /// Connections currently held open by the reactor.
    pub open_connections: AtomicI64,
    /// Per-reactor transport counters, one slot per reactor thread. The
    /// aggregate counters above keep counting across all reactors — existing
    /// dashboards and the CI greps read those; these add the breakdown.
    pub reactors: Vec<ReactorMetrics>,
    /// Cumulative latency histogram over handled requests.
    bucket_counts: Vec<Counter>,
    latency_sum_nanos: Counter,
    latency_count: Counter,
    /// Per-stage pipeline counters accumulated across every audit.
    stage_stats: Mutex<Vec<StageStats>>,
}

pub const ROUTES: [&str; 8] =
    ["check", "batch", "watch", "watchlist", "report", "metrics", "healthz", "other"];

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self::with_reactors(1)
    }

    /// Metrics for a server running `reactors` reactor threads; every
    /// per-reactor series exists from the start (zeros included) so scrapers
    /// see a stable label set for the server's whole lifetime.
    pub fn with_reactors(reactors: usize) -> Self {
        ServeMetrics {
            by_endpoint: ROUTES
                .iter()
                .map(|r| EndpointCounter {
                    route: r,
                    count: Counter::default(),
                })
                .collect(),
            responses_2xx: Counter::default(),
            responses_4xx: Counter::default(),
            responses_5xx: Counter::default(),
            rejected_total: Counter::default(),
            worker_panics_total: Counter::default(),
            inflight: AtomicI64::new(0),
            reaudit_links_total: Counter::default(),
            reaudit_changed_total: Counter::default(),
            rescue_rescued_total: Counter::default(),
            write_aborted_total: Counter::default(),
            open_connections: AtomicI64::new(0),
            reactors: (0..reactors.max(1)).map(|_| ReactorMetrics::default()).collect(),
            bucket_counts: LATENCY_BUCKETS.iter().map(|_| Counter::default()).collect(),
            latency_sum_nanos: Counter::default(),
            latency_count: Counter::default(),
            stage_stats: Mutex::new(Vec::new()),
        }
    }

    pub fn count_route(&self, route: &str) {
        let slot = self
            .by_endpoint
            .iter()
            .find(|e| e.route == route)
            .or_else(|| self.by_endpoint.last())
            .expect("ROUTES is non-empty");
        slot.count.incr();
    }

    pub fn count_status(&self, status: u16) {
        match status / 100 {
            2 => self.responses_2xx.incr(),
            4 => self.responses_4xx.incr(),
            5 => self.responses_5xx.incr(),
            _ => {}
        }
    }

    pub fn observe_latency(&self, seconds: f64) {
        for (bound, count) in LATENCY_BUCKETS.iter().zip(&self.bucket_counts) {
            if seconds <= *bound {
                count.incr();
            }
        }
        self.latency_sum_nanos.add((seconds * 1e9) as u64);
        self.latency_count.incr();
    }

    /// Fold one audit's stage stats into the running totals, matching rows
    /// by stage name. Stages the totals have never seen are appended — the
    /// previous positional `zip` silently dropped trailing stages whenever an
    /// audit ran a longer stage list than the first one recorded (and its
    /// `debug_assert_eq!` on names compiled away in release builds).
    pub fn merge_stage_stats(&self, part: &[StageStats]) {
        let mut total = self.stage_stats.lock();
        for p in part {
            if let Some(t) = total.iter_mut().find(|t| t.name == p.name) {
                t.hits += p.hits;
                t.nanos += p.nanos;
                t.retries.add(p.retries);
                t.retry_backoff_ms += p.retry_backoff_ms;
            } else {
                total.push(p.clone());
            }
        }
    }

    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.stage_stats.lock().clone()
    }

    pub fn requests_total(&self) -> u64 {
        self.by_endpoint.iter().map(|e| e.count.get()).sum()
    }

    /// Render everything as Prometheus exposition text. The caller supplies
    /// the pieces owned elsewhere: cache stats, the simulated web's counter
    /// snapshot, the current admission-queue depth, the origin-budget
    /// ledger's exhausted hosts (empty when no budget is configured), and the
    /// watch scheduler's snapshot. Watch counters come straight from that
    /// snapshot — the scheduler is the single source of truth, so `/metrics`
    /// is in exact parity with `/watchlist` by construction.
    /// `rescue_index_pages` is the size of the service's rediscovery index
    /// (0 with rediscovery off); every `permadead_rescue_*` series renders
    /// unconditionally so scrapers see a stable metric set either way.
    pub fn render_prometheus(
        &self,
        cache: &CacheStats,
        net: &MetricsSnapshot,
        queue_depth: usize,
        origin_budget: &[(String, u64)],
        watch: &WatchSnapshot,
        rescue_index_pages: usize,
    ) -> String {
        let mut out = String::with_capacity(4096);
        let mut metric = |name: &str, kind: &str, help: &str, lines: &[String]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for l in lines {
                out.push_str(l);
                out.push('\n');
            }
        };

        metric(
            "permadead_requests_total",
            "counter",
            "Requests handled, by endpoint.",
            &self
                .by_endpoint
                .iter()
                .map(|e| {
                    format!(
                        "permadead_requests_total{{endpoint=\"{}\"}} {}",
                        e.route,
                        e.count.get()
                    )
                })
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_responses_total",
            "counter",
            "Responses emitted, by status class.",
            &[
                format!("permadead_responses_total{{class=\"2xx\"}} {}", self.responses_2xx.get()),
                format!("permadead_responses_total{{class=\"4xx\"}} {}", self.responses_4xx.get()),
                format!("permadead_responses_total{{class=\"5xx\"}} {}", self.responses_5xx.get()),
            ],
        );
        metric(
            "permadead_rejected_total",
            "counter",
            "Connections refused at admission control (503 + Retry-After).",
            &[format!("permadead_rejected_total {}", self.rejected_total.get())],
        );
        metric(
            "permadead_worker_panics_total",
            "counter",
            "Handler panics caught by the worker loop.",
            &[format!("permadead_worker_panics_total {}", self.worker_panics_total.get())],
        );
        metric(
            "permadead_serve_write_aborted_total",
            "counter",
            "Responses not fully delivered: the connection died with bytes still queued.",
            &[format!(
                "permadead_serve_write_aborted_total {}",
                self.write_aborted_total.get()
            )],
        );
        metric(
            "permadead_serve_open_connections",
            "gauge",
            "Connections currently held open by the reactor.",
            &[format!(
                "permadead_serve_open_connections {}",
                self.open_connections.load(Ordering::Relaxed).max(0)
            )],
        );
        // the per-reactor breakdown of the transport aggregates above
        metric(
            "permadead_serve_reactor_accepted_total",
            "counter",
            "Connections accepted (or adopted via hand-off), by reactor.",
            &self
                .reactors
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    format!(
                        "permadead_serve_reactor_accepted_total{{reactor=\"{i}\"}} {}",
                        r.accepted_total.get()
                    )
                })
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_serve_reactor_dispatched_total",
            "counter",
            "Requests dispatched into the worker pool, by reactor.",
            &self
                .reactors
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    format!(
                        "permadead_serve_reactor_dispatched_total{{reactor=\"{i}\"}} {}",
                        r.dispatched_total.get()
                    )
                })
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_serve_reactor_open_connections",
            "gauge",
            "Connections currently held open, by reactor.",
            &self
                .reactors
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    format!(
                        "permadead_serve_reactor_open_connections{{reactor=\"{i}\"}} {}",
                        r.open_connections.load(Ordering::Relaxed).max(0)
                    )
                })
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_serve_reactor_write_aborted_total",
            "counter",
            "Undeliverable responses, by reactor.",
            &self
                .reactors
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    format!(
                        "permadead_serve_reactor_write_aborted_total{{reactor=\"{i}\"}} {}",
                        r.write_aborted_total.get()
                    )
                })
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_inflight_requests",
            "gauge",
            "Requests currently being processed by workers.",
            &[format!(
                "permadead_inflight_requests {}",
                self.inflight.load(Ordering::Relaxed)
            )],
        );
        metric(
            "permadead_pending_queue_depth",
            "gauge",
            "Accepted connections waiting for a worker.",
            &[format!("permadead_pending_queue_depth {queue_depth}")],
        );

        // latency histogram (cumulative buckets, prometheus-style)
        let mut lines: Vec<String> = LATENCY_BUCKETS
            .iter()
            .zip(&self.bucket_counts)
            .map(|(bound, count)| {
                format!(
                    "permadead_request_duration_seconds_bucket{{le=\"{bound}\"}} {}",
                    count.get()
                )
            })
            .collect();
        lines.push(format!(
            "permadead_request_duration_seconds_bucket{{le=\"+Inf\"}} {}",
            self.latency_count.get()
        ));
        lines.push(format!(
            "permadead_request_duration_seconds_sum {}",
            self.latency_sum_nanos.get() as f64 / 1e9
        ));
        lines.push(format!(
            "permadead_request_duration_seconds_count {}",
            self.latency_count.get()
        ));
        metric(
            "permadead_request_duration_seconds",
            "histogram",
            "End-to-end request handling latency.",
            &lines,
        );

        metric(
            "permadead_cache_hits_total",
            "counter",
            "Audit cache hits.",
            &[format!("permadead_cache_hits_total {}", cache.hits)],
        );
        metric(
            "permadead_cache_misses_total",
            "counter",
            "Audit cache misses (including TTL expirations).",
            &[format!("permadead_cache_misses_total {}", cache.misses)],
        );
        metric(
            "permadead_cache_evictions_total",
            "counter",
            "Entries evicted by LRU pressure.",
            &[format!("permadead_cache_evictions_total {}", cache.evictions)],
        );
        metric(
            "permadead_cache_expirations_total",
            "counter",
            "Entries dropped at TTL expiry.",
            &[format!("permadead_cache_expirations_total {}", cache.expirations)],
        );
        metric(
            "permadead_cache_entries",
            "gauge",
            "Entries currently resident.",
            &[format!("permadead_cache_entries {}", cache.entries)],
        );
        metric(
            "permadead_cache_hit_ratio",
            "gauge",
            "Hits over lookups since start.",
            &[format!("permadead_cache_hit_ratio {:.6}", cache.hit_ratio())],
        );

        // the simulated live web's own counters — the measurement cost side
        metric(
            "permadead_simweb_requests_total",
            "counter",
            "Requests issued to the simulated live web.",
            &[format!("permadead_simweb_requests_total {}", net.requests)],
        );
        metric(
            "permadead_simweb_transport_failures_total",
            "counter",
            "Simulated transport-level failures (DNS, timeouts).",
            &[format!(
                "permadead_simweb_transport_failures_total {}",
                net.transport_failures
            )],
        );
        metric(
            "permadead_simweb_responses_total",
            "counter",
            "Simulated web responses by status family.",
            &[
                format!("permadead_simweb_responses_total{{class=\"2xx\"}} {}", net.responses_2xx),
                format!("permadead_simweb_responses_total{{class=\"3xx\"}} {}", net.responses_3xx),
                format!("permadead_simweb_responses_total{{class=\"4xx\"}} {}", net.responses_4xx),
                format!("permadead_simweb_responses_total{{class=\"5xx\"}} {}", net.responses_5xx),
            ],
        );

        // per-stage pipeline counters
        let stages = self.stage_stats();
        metric(
            "permadead_stage_hits_total",
            "counter",
            "Links for which each pipeline stage did real work.",
            &stages
                .iter()
                .map(|s| format!("permadead_stage_hits_total{{stage=\"{}\"}} {}", s.name, s.hits))
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_stage_seconds_total",
            "counter",
            "Wall-clock spent inside each pipeline stage.",
            &stages
                .iter()
                .map(|s| {
                    format!(
                        "permadead_stage_seconds_total{{stage=\"{}\"}} {:.9}",
                        s.name,
                        s.nanos as f64 / 1e9
                    )
                })
                .collect::<Vec<_>>(),
        );

        // retry counters, summed across stages. Every cause series is always
        // present (zero included) so dashboards see stable label sets.
        let mut retries = permadead_net::RetryCounts::default();
        for s in &stages {
            retries.add(s.retries);
        }
        metric(
            "permadead_retries_total",
            "counter",
            "Retries scheduled by the audit retry policy, by cause.",
            &retries
                .per_cause()
                .iter()
                .map(|(cause, n)| format!("permadead_retries_total{{cause=\"{cause}\"}} {n}"))
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_retry_exhausted_total",
            "counter",
            "Audits that gave up with a retryable failure still in hand.",
            &[format!("permadead_retry_exhausted_total {}", retries.exhausted)],
        );
        // per-host series appear only once a host's budget runs out; the
        // preamble is always present so scrapers learn the metric exists
        metric(
            "permadead_origin_retry_budget_exhausted_total",
            "counter",
            "Checks refused retries because the origin's retry budget ran out.",
            &origin_budget
                .iter()
                .map(|(host, refused)| {
                    format!(
                        "permadead_origin_retry_budget_exhausted_total{{host=\"{host}\"}} {refused}"
                    )
                })
                .collect::<Vec<_>>(),
        );

        // the continuous-monitoring workload (the watch scheduler)
        metric(
            "permadead_watch_due_total",
            "counter",
            "Re-checks dispatched by the watch scheduler.",
            &[format!("permadead_watch_due_total {}", watch.counters.due)],
        );
        metric(
            "permadead_watch_checks_total",
            "counter",
            "Re-check outcomes applied to watched links.",
            &[format!("permadead_watch_checks_total {}", watch.counters.checks)],
        );
        metric(
            "permadead_watch_tagged_total",
            "counter",
            "Watched links tagged permanently dead (strike ladder completed).",
            &[format!("permadead_watch_tagged_total {}", watch.counters.tagged)],
        );
        metric(
            "permadead_watch_revived_total",
            "counter",
            "Tagged links observed alive again (the paper's ~3% resurrections).",
            &[format!("permadead_watch_revived_total {}", watch.counters.revived)],
        );
        metric(
            "permadead_watch_deferred_total",
            "counter",
            "Re-checks pushed to the next day by per-host politeness budgets.",
            &[format!("permadead_watch_deferred_total {}", watch.counters.deferred)],
        );
        metric(
            "permadead_reaudit_links_total",
            "counter",
            "Links re-run by the incremental re-audit engine after watch flips.",
            &[format!("permadead_reaudit_links_total {}", self.reaudit_links_total.get())],
        );
        metric(
            "permadead_reaudit_changed_total",
            "counter",
            "Incremental re-runs whose memoized finding actually changed.",
            &[format!("permadead_reaudit_changed_total {}", self.reaudit_changed_total.get())],
        );
        metric(
            "permadead_watch_queue_depth",
            "gauge",
            "Re-check events waiting in the watch scheduler's queue.",
            &[format!("permadead_watch_queue_depth {}", watch.pending)],
        );
        metric(
            "permadead_watchlist_size",
            "gauge",
            "Links currently being watched.",
            &[format!("permadead_watchlist_size {}", watch.watchlist)],
        );
        metric(
            "permadead_watch_tagged_links",
            "gauge",
            "Watched links currently in the tagged state.",
            &[format!("permadead_watch_tagged_links {}", watch.tagged_now)],
        );
        // every state series is always present (zero included) so dashboards
        // see stable label sets across policies
        metric(
            "permadead_watch_state",
            "gauge",
            "Watched links by policy state (healthy/suspicious/quarantined/tagged).",
            &watch
                .states
                .iter()
                .iter()
                .map(|(state, count)| {
                    format!("permadead_watch_state{{state=\"{state}\"}} {count}")
                })
                .collect::<Vec<_>>(),
        );
        metric(
            "permadead_watch_policy",
            "gauge",
            "The active dead-link detection policy (info-style gauge).",
            &[format!("permadead_watch_policy{{policy=\"{}\"}} 1", watch.policy)],
        );

        // the rediscovery rescue stage (E19); all-zero with rediscovery off
        let rescue_queries =
            stages.iter().find(|s| s.name == "rediscovery").map(|s| s.hits).unwrap_or(0);
        metric(
            "permadead_rescue_queries_total",
            "counter",
            "Links the rediscovery stage searched the index for.",
            &[format!("permadead_rescue_queries_total {rescue_queries}")],
        );
        metric(
            "permadead_rescue_rescued_total",
            "counter",
            "Fresh checks whose rediscovery validated the content at a new live URL.",
            &[format!("permadead_rescue_rescued_total {}", self.rescue_rescued_total.get())],
        );
        metric(
            "permadead_rescue_index_pages",
            "gauge",
            "Live pages in the rediscovery index (0 when rediscovery is off).",
            &[format!("permadead_rescue_index_pages {rescue_index_pages}")],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_counting_falls_back_to_other() {
        let m = ServeMetrics::new();
        m.count_route("check");
        m.count_route("check");
        m.count_route("nonsense");
        assert_eq!(m.by_endpoint[0].count.get(), 2);
        assert_eq!(m.by_endpoint.last().unwrap().count.get(), 1);
        assert_eq!(m.requests_total(), 3);
    }

    #[test]
    fn latency_buckets_are_cumulative() {
        let m = ServeMetrics::new();
        m.observe_latency(0.0002); // falls in every bucket from 0.25ms up
        m.observe_latency(0.3); // only the 1.0 bucket
        let text = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        assert!(text.contains("permadead_request_duration_seconds_bucket{le=\"0.00025\"} 1"));
        assert!(text.contains("permadead_request_duration_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("permadead_request_duration_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("permadead_request_duration_seconds_count 2"));
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let m = ServeMetrics::new();
        m.count_route("check");
        m.count_status(200);
        m.merge_stage_stats(&[StageStats {
            name: "live-check",
            hits: 1,
            nanos: 1000,
            ..Default::default()
        }]);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        let text =
            m.render_prometheus(&cache, &MetricsSnapshot::default(), 2, &[], &WatchSnapshot::default(), 0);
        for needle in [
            "# TYPE permadead_requests_total counter",
            "permadead_requests_total{endpoint=\"check\"} 1",
            "permadead_responses_total{class=\"2xx\"} 1",
            "permadead_cache_hits_total 3",
            "permadead_cache_hit_ratio 0.750000",
            "permadead_pending_queue_depth 2",
            "permadead_stage_hits_total{stage=\"live-check\"} 1",
            "permadead_retries_total{cause=\"connect-timeout\"} 0",
            "permadead_retries_total{cause=\"availability-timeout\"} 0",
            "permadead_retry_exhausted_total 0",
        ] {
            assert!(text.contains(needle), "missing: {needle}\n{text}");
        }
        // every non-comment line is `name{labels} value` with a parseable value
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }

    fn stat(name: &'static str, hits: u64) -> StageStats {
        StageStats {
            name,
            hits,
            nanos: 10,
            ..Default::default()
        }
    }

    #[test]
    fn merge_by_name_survives_mismatched_lengths() {
        let m = ServeMetrics::new();
        // a short stage list first (e.g. a custom two-stage audit)…
        m.merge_stage_stats(&[stat("live-check", 1), stat("archival-class", 1)]);
        // …then the full default list: trailing stages must not be dropped
        m.merge_stage_stats(&[
            stat("live-check", 1),
            stat("archival-class", 1),
            stat("rescue-scan", 5),
        ]);
        let total = m.stage_stats();
        let by_name = |n: &str| total.iter().find(|s| s.name == n).map(|s| s.hits);
        assert_eq!(by_name("live-check"), Some(2));
        assert_eq!(by_name("archival-class"), Some(2));
        assert_eq!(by_name("rescue-scan"), Some(5), "trailing stage was truncated");
        // order-independent too: a permuted list merges by name, not position
        m.merge_stage_stats(&[stat("rescue-scan", 1), stat("live-check", 1)]);
        let total = m.stage_stats();
        let by_name = |n: &str| total.iter().find(|s| s.name == n).map(|s| s.hits);
        assert_eq!(by_name("live-check"), Some(3));
        assert_eq!(by_name("rescue-scan"), Some(6));
    }

    #[test]
    fn origin_budget_series_render_per_exhausted_host() {
        let m = ServeMetrics::new();
        let none = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        // preamble always present, no series until a host exhausts its budget
        assert!(none.contains("# TYPE permadead_origin_retry_budget_exhausted_total counter"));
        assert!(!none.contains("permadead_origin_retry_budget_exhausted_total{"));

        let exhausted = vec![("flappy.org".to_string(), 3u64)];
        let text = m.render_prometheus(
            &CacheStats::default(),
            &MetricsSnapshot::default(),
            0,
            &exhausted,
            &WatchSnapshot::default(),
            0,
        );
        assert!(text.contains(
            "permadead_origin_retry_budget_exhausted_total{host=\"flappy.org\"} 3"
        ));
    }

    #[test]
    fn merged_retry_counts_flow_into_prometheus() {
        let m = ServeMetrics::new();
        let mut s = stat("live-check", 1);
        s.retries.record(permadead_net::RetryCause::ConnectTimeout);
        s.retries.record(permadead_net::RetryCause::RateLimited);
        s.retries.exhausted += 1;
        m.merge_stage_stats(&[s.clone()]);
        m.merge_stage_stats(&[s]);
        let text = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        assert!(text.contains("permadead_retries_total{cause=\"connect-timeout\"} 2"));
        assert!(text.contains("permadead_retries_total{cause=\"rate-limited\"} 2"));
        assert!(text.contains("permadead_retries_total{cause=\"unavailable\"} 0"));
        assert!(text.contains("permadead_retry_exhausted_total 2"));
    }

    #[test]
    fn reaudit_counters_render_and_route_counts() {
        let m = ServeMetrics::new();
        m.count_route("report");
        m.reaudit_links_total.add(4);
        m.reaudit_changed_total.add(1);
        let text = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        for needle in [
            "permadead_requests_total{endpoint=\"report\"} 1",
            "# TYPE permadead_reaudit_links_total counter",
            "permadead_reaudit_links_total 4",
            "permadead_reaudit_changed_total 1",
        ] {
            assert!(text.contains(needle), "missing: {needle}");
        }
    }

    #[test]
    fn reactor_delivery_series_render() {
        let m = ServeMetrics::new();
        m.write_aborted_total.add(3);
        m.open_connections.store(17, Ordering::Relaxed);
        let text = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        for needle in [
            "# TYPE permadead_serve_write_aborted_total counter",
            "permadead_serve_write_aborted_total 3",
            "# TYPE permadead_serve_open_connections gauge",
            "permadead_serve_open_connections 17",
        ] {
            assert!(text.contains(needle), "missing: {needle}");
        }
    }

    #[test]
    fn per_reactor_series_render_for_every_reactor() {
        let m = ServeMetrics::with_reactors(2);
        m.reactors[0].accepted_total.add(5);
        m.reactors[0].dispatched_total.add(4);
        m.reactors[1].accepted_total.add(3);
        m.reactors[1].open_connections.store(2, Ordering::Relaxed);
        m.reactors[1].write_aborted_total.incr();
        let text = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        for needle in [
            "# TYPE permadead_serve_reactor_accepted_total counter",
            "permadead_serve_reactor_accepted_total{reactor=\"0\"} 5",
            "permadead_serve_reactor_accepted_total{reactor=\"1\"} 3",
            "permadead_serve_reactor_dispatched_total{reactor=\"0\"} 4",
            "permadead_serve_reactor_dispatched_total{reactor=\"1\"} 0",
            "permadead_serve_reactor_open_connections{reactor=\"0\"} 0",
            "permadead_serve_reactor_open_connections{reactor=\"1\"} 2",
            "permadead_serve_reactor_write_aborted_total{reactor=\"1\"} 1",
        ] {
            assert!(text.contains(needle), "missing: {needle}");
        }
        // a single-reactor server still renders the labeled breakdown
        let single = ServeMetrics::new();
        let text = single.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        assert!(text.contains("permadead_serve_reactor_accepted_total{reactor=\"0\"} 0"));
        assert!(!text.contains("reactor=\"1\""));
    }

    #[test]
    fn rescue_series_always_render() {
        let m = ServeMetrics::new();
        // rediscovery off: every series present, all zero
        let off = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 0);
        for needle in [
            "# TYPE permadead_rescue_queries_total counter",
            "permadead_rescue_queries_total 0",
            "permadead_rescue_rescued_total 0",
            "# TYPE permadead_rescue_index_pages gauge",
            "permadead_rescue_index_pages 0",
        ] {
            assert!(off.contains(needle), "missing: {needle}");
        }
        // rediscovery on: queries come from the stage counter, rescues from
        // the dedicated counter, pages from the caller
        m.merge_stage_stats(&[stat("rediscovery", 7)]);
        m.rescue_rescued_total.add(2);
        let on = m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &WatchSnapshot::default(), 341);
        assert!(on.contains("permadead_rescue_queries_total 7"), "{on}");
        assert!(on.contains("permadead_rescue_rescued_total 2"));
        assert!(on.contains("permadead_rescue_index_pages 341"));
    }

    #[test]
    fn watch_series_render_from_the_scheduler_snapshot() {
        let m = ServeMetrics::new();
        let watch = WatchSnapshot {
            counters: permadead_sched::SchedCounters {
                due: 9,
                checks: 8,
                tagged: 2,
                revived: 1,
                deferred: 1,
            },
            pending: 4,
            watchlist: 5,
            tagged_now: 1,
            states: permadead_sched::StateDist {
                healthy: 3,
                suspicious: 1,
                quarantined: 0,
                tagged: 1,
            },
            policy: "health-score",
        };
        let text =
            m.render_prometheus(&CacheStats::default(), &MetricsSnapshot::default(), 0, &[], &watch, 0);
        for needle in [
            "# TYPE permadead_watch_due_total counter",
            "permadead_watch_due_total 9",
            "permadead_watch_checks_total 8",
            "permadead_watch_tagged_total 2",
            "permadead_watch_revived_total 1",
            "permadead_watch_deferred_total 1",
            "permadead_watch_queue_depth 4",
            "permadead_watchlist_size 5",
            "permadead_watch_tagged_links 1",
            "# TYPE permadead_watch_state gauge",
            "permadead_watch_state{state=\"healthy\"} 3",
            "permadead_watch_state{state=\"suspicious\"} 1",
            "permadead_watch_state{state=\"quarantined\"} 0",
            "permadead_watch_state{state=\"tagged\"} 1",
            "permadead_watch_policy{policy=\"health-score\"} 1",
        ] {
            assert!(text.contains(needle), "missing: {needle}");
        }
    }
}
