//! `permadead-serve` — the reproduction, turned always-on.
//!
//! The batch pipeline answers the paper's questions over a 10k-link dataset;
//! this crate answers them **per link, on demand**, the way IABot or
//! WaybackMedic-style tooling would query during an edit: "is this link
//! permanently dead, and what rescue copy exists?" It is an HTTP/1.1 service
//! over `std::net` with:
//!
//! - a fixed worker pool dispatched through a bounded crossbeam channel,
//!   with admission control (`503` + `Retry-After`) when the pending queue
//!   overflows ([`server`]);
//! - a sharded TTL+LRU verdict cache so repeated queries never re-drive the
//!   simulated network ([`cache`]);
//! - the batch pipeline's own per-link unit underneath, with provenance
//!   resolution that keeps `/check` verdicts bit-identical to `permadead
//!   audit` for every dataset URL ([`service`]);
//! - Prometheus exposition of request, cache, pipeline-stage, watch, and
//!   simulated-network counters ([`metrics`]);
//! - a background watch scheduler (`POST /watch`, `GET /watchlist`) that
//!   pumps IABot-style continuous re-checks through the same worker pool,
//!   built on [`permadead_sched`] ([`server`]);
//! - an incremental re-audit engine fed by the scheduler's dirty set: one
//!   flipped watched link re-runs one link, and `GET /report` serves the
//!   maintained study aggregate ([`server`]);
//! - scenario → world-snapshot composition and the on-disk world cache
//!   behind `--world-cache` ([`worldcache`]).
//!
//! ```no_run
//! use permadead_serve::{start, AuditService, CacheConfig, ServerConfig};
//! use permadead_sim::ScenarioConfig;
//!
//! let service = AuditService::new(ScenarioConfig::small(42), CacheConfig::default());
//! let handle = start(service, ServerConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! ```

pub mod cache;
pub mod conn;
pub mod json;
pub mod metrics;
pub mod origin;
pub mod partition;
pub mod server;
pub mod service;
pub mod wire;
pub mod worldcache;

pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use partition::HashRing;
pub use metrics::ServeMetrics;
pub use origin::OriginLedger;
pub use server::{start, ServerConfig, ServerHandle, WatchConfig};
pub use service::{AuditService, CheckOutcome, Provenance};
pub use worldcache::{load_or_generate, world_from_scenario, WorldCacheOutcome};
