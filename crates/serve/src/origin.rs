//! Per-origin retry budgets.
//!
//! A retrying audit service can spend unbounded simulated backoff on one
//! flapping origin: every `/check` against it schedules the full retry
//! ladder again. The ledger caps that spend per host — once an origin's
//! cumulative scheduled backoff crosses the budget, later checks against it
//! run with retries refused (single attempt), and each refusal is counted
//! for `/metrics`.
//!
//! Sharded like the verdict cache (FNV-1a over the host) so concurrent
//! workers auditing different origins never contend on one lock.

use crate::cache::fnv1a;
use parking_lot::Mutex;
use std::collections::HashMap;

const SHARDS: usize = 16;

#[derive(Default)]
struct OriginState {
    /// Cumulative backoff this host's retries scheduled, ms.
    spent_ms: u64,
    /// Checks that ran with retries refused after the budget was spent.
    refused_checks: u64,
}

/// Sharded per-host retry-budget accounting.
pub struct OriginLedger {
    budget_ms: u64,
    shards: Vec<Mutex<HashMap<String, OriginState>>>,
}

impl OriginLedger {
    pub fn new(budget_ms: u64) -> OriginLedger {
        OriginLedger {
            budget_ms,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, host: &str) -> &Mutex<HashMap<String, OriginState>> {
        &self.shards[(fnv1a(host) % SHARDS as u64) as usize]
    }

    /// May a check against `host` still retry? A `false` answer counts the
    /// refusal, so callers must ask exactly once per audited check.
    pub fn admit_retries(&self, host: &str) -> bool {
        let mut shard = self.shard(host).lock();
        let state = shard.entry(host.to_string()).or_default();
        if state.spent_ms >= self.budget_ms {
            state.refused_checks += 1;
            return false;
        }
        true
    }

    /// Charge backoff a check actually scheduled against `host`.
    pub fn charge(&self, host: &str, backoff_ms: u64) {
        if backoff_ms == 0 {
            return;
        }
        let mut shard = self.shard(host).lock();
        shard.entry(host.to_string()).or_default().spent_ms += backoff_ms;
    }

    /// `(host, refused_checks)` for every host whose budget ran out, sorted
    /// by host for stable metric exposition.
    pub fn exhausted_snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .iter()
                    .filter(|(_, s)| s.refused_checks > 0)
                    .map(|(host, s)| (host.clone(), s.refused_checks))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_host_may_retry_and_nothing_is_exhausted() {
        let ledger = OriginLedger::new(1_000);
        assert!(ledger.admit_retries("a.example.org"));
        assert!(ledger.admit_retries("a.example.org"));
        assert!(ledger.exhausted_snapshot().is_empty());
    }

    #[test]
    fn spending_past_the_budget_refuses_and_counts() {
        let ledger = OriginLedger::new(1_000);
        assert!(ledger.admit_retries("flappy.org"));
        ledger.charge("flappy.org", 600);
        assert!(ledger.admit_retries("flappy.org"), "under budget: still admitted");
        ledger.charge("flappy.org", 600);
        // 1200 >= 1000: every later check is refused, each one counted
        assert!(!ledger.admit_retries("flappy.org"));
        assert!(!ledger.admit_retries("flappy.org"));
        assert_eq!(ledger.exhausted_snapshot(), vec![("flappy.org".to_string(), 2)]);
        // an unrelated host is untouched
        assert!(ledger.admit_retries("calm.org"));
        assert_eq!(ledger.exhausted_snapshot(), vec![("flappy.org".to_string(), 2)]);
    }

    #[test]
    fn zero_charge_allocates_nothing() {
        let ledger = OriginLedger::new(10);
        ledger.charge("quiet.org", 0);
        for shard in &ledger.shards {
            assert!(shard.lock().is_empty());
        }
    }

    #[test]
    fn snapshot_is_sorted_across_shards() {
        let ledger = OriginLedger::new(0);
        // budget 0: the very first check is already refused
        for host in ["zz.org", "aa.org", "mm.org"] {
            assert!(!ledger.admit_retries(host));
        }
        let snapshot = ledger.exhausted_snapshot();
        let hosts: Vec<&str> = snapshot.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(hosts, ["aa.org", "mm.org", "zz.org"]);
    }

    /// The sort contract under load: enough hosts to populate every FNV
    /// shard, registered in scrambled order, must come back globally sorted
    /// — not merely sorted within each shard — and identically on every
    /// call. HashMap iteration order varies run to run; without the final
    /// sort this flaps and `/metrics` emits unstable series orderings.
    #[test]
    fn snapshot_ordering_is_total_and_repeatable_over_many_hosts() {
        let ledger = OriginLedger::new(0);
        // register in a deliberately non-sorted, shard-scattering order
        let mut hosts: Vec<String> = (0..100).map(|i| format!("h{:03}.org", (i * 37) % 100)).collect();
        for host in &hosts {
            assert!(!ledger.admit_retries(host));
            assert!(!ledger.admit_retries(host), "second refusal counts too");
        }
        // every shard should actually hold something, else the test proves
        // nothing about cross-shard merging
        let populated = ledger.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(populated > SHARDS / 2, "only {populated}/{SHARDS} shards populated");

        let snapshot = ledger.exhausted_snapshot();
        assert_eq!(snapshot.len(), 100);
        hosts.sort();
        let got: Vec<&str> = snapshot.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(got, hosts.iter().map(String::as_str).collect::<Vec<_>>());
        assert!(snapshot.iter().all(|(_, refused)| *refused == 2));
        assert_eq!(snapshot, ledger.exhausted_snapshot(), "snapshot must be repeatable");
    }
}
