//! Scenario → [`World`] composition and the on-disk world cache.
//!
//! `permadead-sim` deliberately knows nothing about `core`'s datasets or
//! `worldstore`'s tables, so lowering a generated scenario into a savable
//! [`World`] lives here, in the lowest crate that depends on all three. The
//! dataset formulas are exactly the audit/serve ones — march = 60% of the
//! category, alphabetical, sample-capped, seed `^ 0xA1`; september = random
//! sample, seed `^ 0xB2`; all-tagged = every IABot-tagged URL — so a
//! snapshot-backed [`AuditService`](crate::AuditService) answers
//! bit-identically to a generated one.
//!
//! [`load_or_generate`] is the `--world-cache` entry point the CLI and the
//! repro binaries share: hit → decode the snapshot (no wiki replay at all);
//! miss → generate, lower, save, and leave the snapshot behind for next
//! time.

use permadead_core::Dataset;
use permadead_sim::{Scenario, ScenarioConfig};
use permadead_worldstore::{Interner, World, WorldMeta};
use std::path::{Path, PathBuf};

/// Lower a fully generated scenario into a savable [`World`]. Consumes the
/// scenario: the web and archive move into the world unchanged, the wiki is
/// reduced to the three link tables, and ground truth (`specs`,
/// `bot_reports`) is dropped — a snapshot answers audits, not calibration.
pub fn world_from_scenario(scenario: Scenario, scale: &str) -> World {
    let category = scenario.wiki.permanently_dead_category().len();
    let march = Dataset::alphabetical(
        &scenario.wiki,
        (category * 6 / 10).max(1),
        scenario.config.sample_size,
        scenario.config.seed ^ 0xA1,
    );
    let september = Dataset::random(
        &scenario.wiki,
        scenario.config.sample_size,
        scenario.config.seed ^ 0xB2,
    );
    let all = Dataset::random(&scenario.wiki, usize::MAX, 0);

    let mut interner = Interner::new();
    let march = march.to_table(&mut interner);
    let september = september.to_table(&mut interner);
    let all = all.to_table(&mut interner);

    let meta = WorldMeta {
        seed: scenario.config.seed,
        scale: scale.to_string(),
        rot_links: scenario.config.rot_links as u32,
        sample_size: scenario.config.sample_size as u32,
        study_time: scenario.config.study_time,
        random_sample_time: scenario.config.random_sample_time,
        // the builder's derivation (simgen keys page content off the
        // scenario seed); recorded so `World::load` re-aims `LiveWeb::new`
        content_seed: scenario.config.seed ^ 0xC0FFEE,
    };
    // Index the live web's reachable pages at study time so a snapshot-backed
    // service can run the rediscovery stage without regenerating the
    // scenario. The build is bit-identical for any worker count, so the
    // snapshot bytes stay deterministic.
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rescue = permadead_rescue::RescueIndex::build(
        &scenario.web,
        scenario.config.study_time,
        jobs,
    );
    World::assemble(meta, scenario.web, scenario.archive, interner, march, september, all)
        .with_rescue(rescue)
}

/// Where a `(seed, scale)` world lives inside a cache directory.
pub fn world_cache_path(dir: &Path, seed: u64, scale: &str) -> PathBuf {
    dir.join(format!("world_seed{seed}_{scale}.pdw"))
}

/// How [`load_or_generate`] satisfied a request.
#[derive(Debug)]
pub struct WorldCacheOutcome {
    /// True when the world came from an existing snapshot.
    pub hit: bool,
    /// The snapshot file consulted (and written, on a miss).
    pub path: PathBuf,
    /// Snapshot size in bytes.
    pub size_bytes: u64,
    /// Wall-clock of the load (hit) or the generate + lower + save (miss).
    pub elapsed: std::time::Duration,
    /// On a miss that found a file it could not trust, why the snapshot was
    /// discarded (wrong header, wrong format version, corruption). `None`
    /// for clean misses and for hits.
    pub notice: Option<String>,
}

impl WorldCacheOutcome {
    /// One operator-facing line: `world cache hit: … (412 KiB, 3.2ms)`.
    /// Misses that discarded an untrustworthy file say why.
    pub fn describe(&self) -> String {
        let mut line = format!(
            "world cache {}: {} ({} bytes, {:.1?})",
            if self.hit { "hit" } else { "miss" },
            self.path.display(),
            self.size_bytes,
            self.elapsed,
        );
        if let Some(notice) = &self.notice {
            line.push_str(&format!(" — stale snapshot ignored: {notice}"));
        }
        line
    }
}

/// Load the `(config.seed, scale)` world from `dir`, or generate it and
/// leave a snapshot behind for next time. A file whose header does not echo
/// the requested seed, scale, and corpus sizes — a renamed file, a stale
/// `--sample` override, a corrupt format — is regenerated and overwritten
/// rather than trusted.
pub fn load_or_generate(
    dir: &Path,
    config: ScenarioConfig,
    scale: &str,
) -> std::io::Result<(World, WorldCacheOutcome)> {
    let path = world_cache_path(dir, config.seed, scale);
    let t0 = std::time::Instant::now();
    let mut notice = None;
    if path.exists() {
        // wrong world under the right name, or undecodable: fall through to
        // regeneration, remembering why so the operator line can say so
        match World::load(&path) {
            Ok(world)
                if world.meta.seed == config.seed
                    && world.meta.scale == scale
                    && world.meta.rot_links == config.rot_links as u32
                    && world.meta.sample_size == config.sample_size as u32 =>
            {
                let size_bytes = std::fs::metadata(&path)?.len();
                let outcome = WorldCacheOutcome {
                    hit: true,
                    path,
                    size_bytes,
                    elapsed: t0.elapsed(),
                    notice: None,
                };
                return Ok((world, outcome));
            }
            Ok(world) => {
                notice = Some(format!(
                    "header mismatch (file has seed {} scale {:?} rot_links {} sample {}, \
                     wanted seed {} scale {:?} rot_links {} sample {})",
                    world.meta.seed,
                    world.meta.scale,
                    world.meta.rot_links,
                    world.meta.sample_size,
                    config.seed,
                    scale,
                    config.rot_links,
                    config.sample_size,
                ));
            }
            Err(e) => notice = Some(format!("undecodable snapshot ({e})")),
        }
    }
    std::fs::create_dir_all(dir)?;
    let scenario = Scenario::generate(config);
    let world = world_from_scenario(scenario, scale);
    let size_bytes = world.save(&path)?;
    let outcome =
        WorldCacheOutcome { hit: false, path, size_bytes, elapsed: t0.elapsed(), notice };
    Ok((world, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ScenarioConfig {
        ScenarioConfig { rot_links: 40, ..ScenarioConfig::small(7) }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pdw-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_then_hit_yield_the_same_bytes() {
        let dir = tmpdir("roundtrip");
        let (first, out1) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(!out1.hit);
        assert_eq!(out1.size_bytes, std::fs::metadata(&out1.path).unwrap().len());

        let (second, out2) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(out2.hit, "second call must load the snapshot");
        assert_eq!(out2.path, out1.path);
        assert_eq!(first.to_bytes(), second.to_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_header_is_regenerated() {
        let dir = tmpdir("mismatch");
        let (_, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        // masquerade the seed-7 snapshot as seed 8
        let path8 = world_cache_path(&dir, 8, "small");
        std::fs::rename(&out.path, &path8).unwrap();
        let cfg8 = ScenarioConfig { rot_links: 40, ..ScenarioConfig::small(8) };
        let (world, out8) = load_or_generate(&dir, cfg8, "small").unwrap();
        assert!(!out8.hit, "a header echoing the wrong seed must not be trusted");
        assert_eq!(world.meta.seed, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sample_override_does_not_hit_a_stale_snapshot() {
        let dir = tmpdir("sample");
        let (_, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(!out.hit);
        // same seed + scale, different --sample: the cached world answers a
        // different question and must be regenerated, not served
        let smaller = ScenarioConfig { sample_size: 10, ..cfg() };
        let (world, out2) = load_or_generate(&dir, smaller, "small").unwrap();
        assert!(!out2.hit, "a stale sample size must not be trusted");
        assert_eq!(world.meta.sample_size, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_regenerated() {
        let dir = tmpdir("corrupt");
        let (_, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        let mut bytes = std::fs::read(&out.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&out.path, &bytes).unwrap();
        let (world, out2) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(!out2.hit);
        assert_eq!(world.meta.seed, 7);
        // the operator line still says "world cache miss" (scripts grep for
        // it) and now explains why the on-disk file was not trusted
        let line = out2.describe();
        assert!(line.contains("world cache miss"), "{line}");
        assert!(line.contains("stale snapshot ignored"), "{line}");
        assert!(out2.notice.as_deref().unwrap().contains("undecodable snapshot"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checksum_is_regenerated_with_notice() {
        let dir = tmpdir("truncated");
        let (_, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        let bytes = std::fs::read(&out.path).unwrap();
        // chop the trailing checksum: the codec must report, not panic
        std::fs::write(&out.path, &bytes[..bytes.len() - 4]).unwrap();
        let (world, out2) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(!out2.hit);
        assert_eq!(world.meta.seed, 7);
        assert!(out2.notice.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_format_version_is_regenerated_with_notice() {
        let dir = tmpdir("version");
        let (_, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        let mut bytes = std::fs::read(&out.path).unwrap();
        // masquerade as format v1 (bytes 4..8 hold the version word)
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&out.path, &bytes).unwrap();
        let (world, out2) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(!out2.hit, "a v1 file must be regenerated, not trusted");
        assert_eq!(world.meta.seed, 7);
        let line = out2.describe();
        assert!(line.contains("world cache miss"), "{line}");
        assert!(out2.notice.as_deref().unwrap().contains("decode error"), "{:?}", out2.notice);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_mismatch_notice_names_both_worlds() {
        let dir = tmpdir("mismatch-notice");
        let (_, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        let path8 = world_cache_path(&dir, 8, "small");
        std::fs::rename(&out.path, &path8).unwrap();
        let cfg8 = ScenarioConfig { rot_links: 40, ..ScenarioConfig::small(8) };
        let (_, out8) = load_or_generate(&dir, cfg8, "small").unwrap();
        assert!(!out8.hit);
        let notice = out8.notice.as_deref().unwrap();
        assert!(notice.contains("header mismatch"), "{notice}");
        assert!(notice.contains("seed 7") && notice.contains("seed 8"), "{notice}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_carries_the_rescue_index() {
        let dir = tmpdir("rescue");
        let (generated, _) = load_or_generate(&dir, cfg(), "small").unwrap();
        let (loaded, out) = load_or_generate(&dir, cfg(), "small").unwrap();
        assert!(out.hit);
        let built = generated.rescue.as_ref().expect("generated world carries an index");
        let thawed = loaded.rescue.as_ref().expect("snapshot-backed world carries an index");
        assert!(!built.is_empty(), "seed-7 world has live pages to index");
        assert_eq!(built, thawed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
