//! Sharded TTL+LRU verdict cache.
//!
//! Repeated `/check` queries for the same URL must never re-drive the
//! simulated network: the world is deterministic, so a verdict computed once
//! is the verdict. The cache makes that an invariant you can observe — a
//! cache hit produces **zero** new requests in the web's
//! [`MetricsSnapshot`](permadead_net::MetricsSnapshot) — while staying
//! bounded in memory and forgetting entries after a TTL (on real
//! infrastructure the live web drifts; the TTL models the re-check cadence
//! IABot itself uses between sweeps).
//!
//! Design: N independent shards, each a mutex-guarded map with its own
//! capacity slice and a logical access clock. Eviction is strict LRU by that
//! clock, which makes it *deterministic*: for a fixed sequence of
//! inserts/gets, the same entries survive on every run (no wall-clock, no
//! random tiebreak). Hit/miss/eviction/expiry counters are cache-global
//! atomics, so per-shard traffic rolls up into one accounting view.
//!
//! Shard choice is a consistent-hash ring over the URL
//! ([`crate::partition::HashRing`]), not `hash % shards`: every reactor
//! resolves a key to the same shard without coordination, load spreads
//! evenly so no shard's lock is the contended one, and resizing the shard
//! count between runs remaps only ~1/(n+1) of the key space instead of
//! nearly all of it.

use crate::partition::HashRing;
use parking_lot::Mutex;
use permadead_net::{Counter, Duration, SimTime};
use std::collections::HashMap;

/// Shape of the cache: shard count, total capacity, entry TTL.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of independent shards (rounded up to at least 1). More shards
    /// = less lock contention under concurrent workers.
    pub shards: usize,
    /// Total entry budget across all shards (each shard gets an equal
    /// slice, rounded up, so the real bound is `ceil(cap/shards) * shards`).
    pub capacity: usize,
    /// How long an entry stays valid, in simulated time.
    pub ttl: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity: 4096,
            ttl: Duration::hours(1),
        }
    }
}

struct Entry<V> {
    value: V,
    inserted: SimTime,
    /// Logical access tick within the owning shard; strictly increasing, so
    /// LRU order is total and eviction deterministic.
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
    capacity: usize,
}

impl<V> Shard<V> {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Key of the least-recently-used entry (the unique minimum tick).
    fn lru_key(&self) -> Option<String> {
        self.map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
    }
}

/// Frozen counter values for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub expirations: u64,
    pub entries: u64,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded TTL+LRU cache. Values are cloned out on hit, so `V` should be
/// cheap to clone (the serve crate stores pre-rendered response bodies).
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    ring: HashRing,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    expirations: Counter,
    ttl: Duration,
}

/// FNV-1a, the same stable hash everywhere: shard choice must not depend on
/// `HashMap`'s per-process randomized state.
pub fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<V: Clone> ShardedCache<V> {
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            ring: HashRing::new(shards),
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
            expirations: Counter::default(),
            ttl: config.ttl,
        }
    }

    /// Which shard a key lands in — stable across runs, processes, and
    /// reactor threads (consistent-hash ring over the FNV of the key).
    pub fn shard_of(&self, key: &str) -> usize {
        self.ring.shard_for(key)
    }

    fn expired(&self, entry_inserted: SimTime, now: SimTime) -> bool {
        now - entry_inserted >= self.ttl
    }

    /// Look up `key` at simulated time `now`. A present-but-expired entry is
    /// removed and counted as an expiration *and* a miss (the caller will
    /// recompute and re-insert, exactly like a cold key).
    pub fn get(&self, key: &str, now: SimTime) -> Option<V> {
        let mut shard = self.shards[self.shard_of(key)].lock();
        let tick = shard.touch();
        match shard.map.get_mut(key) {
            Some(entry) if !self.expired(entry.inserted, now) => {
                entry.last_used = tick;
                self.hits.incr();
                Some(entry.value.clone())
            }
            Some(_) => {
                shard.map.remove(key);
                self.expirations.incr();
                self.misses.incr();
                None
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Insert (or refresh) `key`. A full shard first sweeps its expired
    /// entries — dead weight only `get` used to reclaim, one key at a time,
    /// so a cold shard full of stale verdicts would evict *fresh* entries to
    /// admit new ones — and only evicts the least-recently-used live entry
    /// if still at capacity. Swept entries count as expirations, not
    /// evictions.
    pub fn insert(&self, key: &str, value: V, now: SimTime) {
        let mut shard = self.shards[self.shard_of(key)].lock();
        if !shard.map.contains_key(key) && shard.map.len() >= shard.capacity {
            let dead: Vec<String> = shard
                .map
                .iter()
                .filter(|(_, e)| self.expired(e.inserted, now))
                .map(|(k, _)| k.clone())
                .collect();
            for k in &dead {
                shard.map.remove(k);
                self.expirations.incr();
            }
            if shard.map.len() >= shard.capacity {
                if let Some(victim) = shard.lru_key() {
                    shard.map.remove(&victim);
                    self.evictions.incr();
                }
            }
        }
        let tick = shard.touch();
        shard.map.insert(
            key.to_string(),
            Entry {
                value,
                inserted: now,
                last_used: tick,
            },
        );
    }

    /// Entries currently resident, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is this exact key resident (ignoring TTL)? Test/diagnostic helper.
    pub fn contains(&self, key: &str) -> bool {
        self.shards[self.shard_of(key)].lock().map.contains_key(key)
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            expirations: self.expirations.get(),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::from_ymd(2022, 3, 1)
    }

    fn tiny(shards: usize, capacity: usize) -> ShardedCache<u32> {
        ShardedCache::new(CacheConfig {
            shards,
            capacity,
            ttl: Duration::hours(1),
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = tiny(4, 16);
        assert_eq!(c.get("a", t0()), None);
        c.insert("a", 1, t0());
        assert_eq!(c.get("a", t0()), Some(1));
        assert_eq!(c.get("b", t0()), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 1);
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_eviction_under_fixed_sequence() {
        // one shard, capacity 3: after inserting a,b,c, touching a and c
        // makes b the unique LRU — the 4th insert must evict exactly b,
        // every run
        let seq = |keys: &mut Vec<&'static str>| {
            let c = tiny(1, 3);
            c.insert("a", 1, t0());
            c.insert("b", 2, t0());
            c.insert("c", 3, t0());
            c.get("a", t0());
            c.get("c", t0());
            c.insert("d", 4, t0());
            for k in ["a", "b", "c", "d"] {
                if c.contains(k) {
                    keys.push(k);
                }
            }
            assert_eq!(c.stats().evictions, 1);
        };
        let mut first = Vec::new();
        seq(&mut first);
        assert_eq!(first, ["a", "c", "d"]);
        // replay: identical survivors
        let mut again = Vec::new();
        seq(&mut again);
        assert_eq!(first, again);
    }

    #[test]
    fn eviction_chain_follows_lru_order() {
        let c = tiny(1, 2);
        c.insert("a", 1, t0());
        c.insert("b", 2, t0());
        c.insert("c", 3, t0()); // evicts a
        assert!(!c.contains("a"));
        assert!(c.contains("b") && c.contains("c"));
        c.get("b", t0()); // b now more recent than c
        c.insert("d", 4, t0()); // evicts c
        assert!(!c.contains("c"));
        assert!(c.contains("b") && c.contains("d"));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn ttl_expiry_at_pinned_simtime() {
        let c = ShardedCache::new(CacheConfig {
            shards: 2,
            capacity: 8,
            ttl: Duration::minutes(10),
        });
        c.insert("k", 9, t0());
        // one tick before the deadline: still valid
        let just_before = t0() + Duration::seconds(10 * 60 - 1);
        assert_eq!(c.get("k", just_before), Some(9));
        // exactly at the deadline: expired, removed, counted
        let at_deadline = t0() + Duration::minutes(10);
        assert_eq!(c.get("k", at_deadline), None);
        let s = c.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.entries, 0);
        // re-insert after expiry restarts the clock
        c.insert("k", 10, at_deadline);
        assert_eq!(c.get("k", at_deadline + Duration::minutes(9)), Some(10));
    }

    #[test]
    fn full_shard_of_expired_entries_admits_without_evicting_fresh_ones() {
        // one shard, capacity 3: two entries inserted at t0 expire an hour
        // later; one refreshed entry stays live. At capacity, inserting a new
        // key must sweep the two corpses (expirations) and keep the fresh
        // entry — not evict it as the tick-wise LRU victim.
        let c = tiny(1, 3);
        c.insert("old-a", 1, t0());
        c.insert("old-b", 2, t0());
        let later = t0() + Duration::minutes(50);
        c.insert("fresh", 3, later);
        let after_expiry = t0() + Duration::hours(1); // old-* dead, fresh alive
        c.insert("new", 4, after_expiry);
        assert!(c.contains("fresh"), "live entry evicted in favor of corpses");
        assert!(c.contains("new"));
        assert!(!c.contains("old-a") && !c.contains("old-b"));
        let s = c.stats();
        assert_eq!(s.evictions, 0, "sweeping expired entries is not an eviction");
        assert_eq!(s.expirations, 2);
        assert_eq!(s.entries, 2);
        // with every resident entry live, the LRU path still works
        c.insert("more", 5, after_expiry); // at capacity 3 after this
        c.insert("even-more", 6, after_expiry); // now a live eviction
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.contains("fresh"), "fresh was the LRU live entry");
    }

    #[test]
    fn cross_shard_hit_miss_accounting() {
        // capacity well above 64 keys: with the ring spreading keys
        // near-binomially, a 16-entry shard slice would sit exactly at the
        // mean occupancy and evict on ordinary variance — this test is
        // about the accounting ledger, not capacity pressure
        let c = tiny(4, 256);
        // find keys covering at least 3 distinct shards
        let keys: Vec<String> = (0..64).map(|i| format!("http://s{i}.org/p")).collect();
        let mut shards_seen: std::collections::HashSet<usize> = Default::default();
        for k in &keys {
            shards_seen.insert(c.shard_of(k));
        }
        assert!(shards_seen.len() >= 3, "keys did not spread over shards");
        for k in &keys {
            c.insert(k, 7, t0());
        }
        for k in &keys {
            assert_eq!(c.get(k, t0()), Some(7));
        }
        for k in &keys {
            assert_eq!(c.get(&format!("{k}?missing"), t0()), None);
        }
        // traffic hit every shard, but the accounting is one global ledger
        let s = c.stats();
        assert_eq!(s.hits, 64);
        assert_eq!(s.misses, 64);
        assert_eq!(s.entries, 64);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_is_per_shard_slice() {
        // 2 shards, capacity 4 → 2 per shard; no shard exceeds its slice
        let c = tiny(2, 4);
        for i in 0..32 {
            c.insert(&format!("k{i}"), i, t0());
        }
        assert!(c.len() <= 4);
        assert!(c.stats().evictions >= 28);
    }

    #[test]
    fn shard_choice_is_stable() {
        let c = tiny(8, 8);
        for k in ["http://a.org/", "http://b.org/x", "zzz"] {
            assert_eq!(c.shard_of(k), c.shard_of(k));
        }
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }
}
