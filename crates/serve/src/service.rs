//! The audit brain behind the endpoints: one seeded world, the batch
//! pipeline's per-link unit, and the verdict cache.
//!
//! **Parity contract.** For any URL that appears in the batch `audit`
//! dataset, `/check` must return the *bit-identical* classification the
//! batch run produces. The pipeline keys all per-link randomness off the
//! link's dataset index, so the service rebuilds the same March-style
//! dataset (same formula as `permadead audit`: 60% of the category,
//! alphabetical, sample-capped, seed `^ 0xA1`) and replays each URL at its
//! own index through [`analyze_link`]. URLs tagged on the wiki but outside
//! the sample get their real provenance and a stable FNV-derived index;
//! URLs the wiki never saw get synthetic provenance and are still audited
//! against the live (simulated) web and archive.

use crate::cache::{fnv1a, CacheConfig, CacheStats, ShardedCache};
use crate::json::Object;
use crate::origin::OriginLedger;
use permadead_archive::ArchiveStore;
use permadead_core::{
    analyze_link, default_stages, empty_stats, live_check_with_retry, recommend_for, Dataset,
    DatasetEntry, IncrementalAudit, LiveCheck, Recommendation, ReauditOutcome, Stage, StageStats,
    StudyEnv, StudyOptions,
};
use permadead_net::{MetricsSnapshot, RetryPolicy, SimTime};
use permadead_rescue::RescueIndex;
use permadead_sim::{Scenario, ScenarioConfig};
use permadead_url::Url;
use permadead_web::LiveWeb;
use permadead_worldstore::World;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a queried URL's provenance came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// In the batch audit dataset — verdicts are bit-identical to `audit`.
    Dataset,
    /// Tagged on the wiki but not in the sampled dataset.
    Wiki,
    /// Unknown to the wiki; audited with synthetic provenance.
    Unknown,
}

impl Provenance {
    pub fn as_str(self) -> &'static str {
        match self {
            Provenance::Dataset => "dataset",
            Provenance::Wiki => "wiki",
            Provenance::Unknown => "unknown",
        }
    }
}

/// Outcome of one `/check`-style query.
pub struct CheckOutcome {
    /// Full response body (JSON object), including the `cached` flag.
    pub body: String,
    pub cached: bool,
    /// The fresh analysis behind this body found a rediscovery rescue.
    /// Always `false` for cache hits (a hit runs zero pipeline work), so
    /// counters fed by this track fresh rescues, like the stage stats.
    pub rediscovered: bool,
}

/// The seeded world behind a service: either a freshly generated
/// [`Scenario`] or a [`World`] rehydrated from an on-disk snapshot. The
/// snapshot determinism contract makes the two behaviourally identical, so
/// every handler goes through these accessors and never cares which it got.
enum WorldSource {
    Scenario(Box<Scenario>),
    Snapshot(Box<World>),
}

impl WorldSource {
    fn web(&self) -> &LiveWeb {
        match self {
            WorldSource::Scenario(s) => &s.web,
            WorldSource::Snapshot(w) => &w.web,
        }
    }

    fn archive(&self) -> &ArchiveStore {
        match self {
            WorldSource::Scenario(s) => &s.archive,
            WorldSource::Snapshot(w) => &w.archive,
        }
    }

    fn study_time(&self) -> SimTime {
        match self {
            WorldSource::Scenario(s) => s.config.study_time,
            WorldSource::Snapshot(w) => w.meta.study_time,
        }
    }
}

/// The shared audit service: immutable world + concurrent cache.
pub struct AuditService {
    world: WorldSource,
    stages: Vec<Box<dyn Stage>>,
    /// URL → index in the batch dataset (the parity set).
    index_of: HashMap<String, usize>,
    /// The batch dataset itself, indexable by `index_of` values.
    dataset: Dataset,
    /// Provenance for tagged URLs outside the sample.
    extra: HashMap<String, DatasetEntry>,
    cache: ShardedCache<String>,
    /// Retry schedule for transient live-check failures. The default —
    /// [`RetryPolicy::single`] — preserves the batch-parity contract exactly.
    retry: RetryPolicy,
    /// Per-origin retry budget (`--origin-retry-budget-ms`). Once a host's
    /// checks have scheduled this much cumulative backoff, later checks
    /// against it run single-attempt and each refusal is counted.
    origin_budget: Option<OriginLedger>,
    /// Rediscovery index (`--rediscovery on`). `None` keeps the pipeline's
    /// rediscovery stage dormant and every answer archive-only.
    rescue: Option<Arc<RescueIndex>>,
}

impl AuditService {
    /// Generate the world for `config` and index it for serving.
    pub fn new(config: ScenarioConfig, cache: CacheConfig) -> AuditService {
        let scenario = Scenario::generate(config);
        Self::over(scenario, cache)
    }

    /// Build over an existing scenario (tests reuse a pre-built world).
    pub fn over(scenario: Scenario, cache: CacheConfig) -> AuditService {
        // exactly the `permadead audit` dataset: 60% of the category,
        // alphabetical, capped at sample_size, seeded with seed ^ 0xA1
        let category = scenario.wiki.permanently_dead_category().len();
        let dataset = Dataset::alphabetical(
            &scenario.wiki,
            (category * 6 / 10).max(1),
            scenario.config.sample_size,
            scenario.config.seed ^ 0xA1,
        );
        let index_of: HashMap<String, usize> = dataset
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.url.to_string(), i))
            .collect();
        // every IABot-tagged URL wiki-wide, for provenance beyond the sample
        let all = Dataset::random(&scenario.wiki, usize::MAX, 0);
        let extra: HashMap<String, DatasetEntry> = all
            .entries
            .into_iter()
            .filter(|e| !index_of.contains_key(&e.url.to_string()))
            .map(|e| (e.url.to_string(), e))
            .collect();
        AuditService {
            world: WorldSource::Scenario(Box::new(scenario)),
            stages: default_stages(),
            index_of,
            dataset,
            extra,
            cache: ShardedCache::new(cache),
            retry: RetryPolicy::single(),
            origin_budget: None,
            rescue: None,
        }
    }

    /// Build over a world snapshot (the `--world-cache` path). No wiki, no
    /// replay: the batch-parity dataset comes straight from the interned
    /// march table, and the all-tagged table supplies provenance beyond the
    /// sample — the same two sets [`Self::over`] derives from the scenario,
    /// recorded at snapshot time.
    pub fn from_world(world: World, cache: CacheConfig) -> AuditService {
        let dataset = Dataset::from_table(&world.march, &world.interner);
        let index_of: HashMap<String, usize> = dataset
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.url.to_string(), i))
            .collect();
        let all = Dataset::from_table(&world.all_tagged, &world.interner);
        let extra: HashMap<String, DatasetEntry> = all
            .entries
            .into_iter()
            .filter(|e| !index_of.contains_key(&e.url.to_string()))
            .map(|e| (e.url.to_string(), e))
            .collect();
        AuditService {
            world: WorldSource::Snapshot(Box::new(world)),
            stages: default_stages(),
            index_of,
            dataset,
            extra,
            cache: ShardedCache::new(cache),
            retry: RetryPolicy::single(),
            origin_budget: None,
            rescue: None,
        }
    }

    /// Enable lexical-signature rediscovery (E19): the pipeline's
    /// rediscovery stage queries `rescue` for every non-alive link that has
    /// a pre-marking content fingerprint. For a snapshot-backed service,
    /// pull the index out of the [`World`] before handing it over
    /// (`world.rescue.clone()`); for a generated one, build it from the
    /// scenario's web at study time.
    pub fn with_rescue(mut self, rescue: Option<Arc<RescueIndex>>) -> AuditService {
        self.rescue = rescue;
        self
    }

    /// Pages in the active rediscovery index (0 when rediscovery is off).
    pub fn rescue_index_pages(&self) -> usize {
        self.rescue.as_deref().map(RescueIndex::len).unwrap_or(0)
    }

    /// Replace the live-check retry policy (`--retries` on the CLI). Anything
    /// other than [`RetryPolicy::single`] trades bit-parity with the batch
    /// audit for resilience to the simulated web's transient faults.
    pub fn with_retry(mut self, retry: RetryPolicy) -> AuditService {
        self.retry = retry;
        self
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Cap the cumulative backoff any single origin may cost us
    /// (`--origin-retry-budget-ms`). `None` disables the cap. Only meaningful
    /// alongside a retrying policy; with the single-attempt default there is
    /// no backoff to budget and no check is ever refused.
    pub fn with_origin_retry_budget_ms(mut self, budget_ms: Option<u64>) -> AuditService {
        self.origin_budget = budget_ms.map(OriginLedger::new);
        self
    }

    /// `(host, refused_checks)` per budget-exhausted origin, for `/metrics`.
    pub fn origin_budget_snapshot(&self) -> Vec<(String, u64)> {
        self.origin_budget
            .as_ref()
            .map(|l| l.exhausted_snapshot())
            .unwrap_or_default()
    }

    /// The moment every audit is evaluated at (the paper's study time).
    pub fn study_time(&self) -> SimTime {
        self.world.study_time()
    }

    /// One watch-scheduler re-check: fetch `url` at simulated instant `at`
    /// through the service's retry policy. Unlike [`Self::check`] this is a
    /// raw live fetch — no cache, no pipeline, no study-time pinning —
    /// because the whole point of watching is observing the world *change*
    /// after the study snapshot.
    pub fn live_recheck(
        &self,
        url: &Url,
        at: SimTime,
    ) -> (LiveCheck, permadead_net::RetryOutcome) {
        live_check_with_retry(self.world.web(), url, at, &self.retry)
    }

    /// The generated scenario behind a [`Self::new`]/[`Self::over`] service.
    /// Panics for snapshot-backed services: ground truth (the wiki, the link
    /// specs) is deliberately not serialized, so only generation-aware
    /// callers (tests, calibration tools) may ask.
    pub fn scenario(&self) -> &Scenario {
        match &self.world {
            WorldSource::Scenario(s) => s,
            WorldSource::Snapshot(_) => {
                panic!("scenario(): service is snapshot-backed; generation ground truth is unavailable")
            }
        }
    }

    /// The batch-parity dataset backing `/check`.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counters of the simulated live web (measurement cost side).
    pub fn net_snapshot(&self) -> MetricsSnapshot {
        self.world.web().metrics.snapshot()
    }

    /// Dataset index of `url`, if it is in the batch-parity sample.
    pub fn dataset_index_of(&self, url: &str) -> Option<usize> {
        self.index_of.get(url).copied()
    }

    /// Build the incremental re-audit engine over this service's world: one
    /// full pipeline pass at study time, memoized per link. Expensive —
    /// callers cache the result and feed it to [`Self::reaudit`].
    pub fn build_incremental(&self) -> IncrementalAudit {
        IncrementalAudit::build(
            self.world.web(),
            self.world.archive(),
            &self.dataset,
            self.study_time(),
            StudyOptions::default()
                .with_retry(self.retry)
                .with_rescue(self.rescue.clone()),
        )
    }

    /// Re-run exactly `indices` of the batch dataset at watch instant `at`.
    /// Wrapped here so the world's web and archive stay private.
    pub fn reaudit(
        &self,
        audit: &mut IncrementalAudit,
        indices: &[usize],
        at: SimTime,
    ) -> ReauditOutcome {
        audit.reaudit_indices(self.world.web(), self.world.archive(), indices, at)
    }

    /// Audit one URL at serving time `now` (cache TTL clock only; the
    /// analysis itself is pinned at [`Self::study_time`]). Returns the
    /// response body plus the stage stats of a fresh analysis (`None` when
    /// the verdict came from cache — a hit does zero pipeline work).
    pub fn check(
        &self,
        raw_url: &str,
        now: SimTime,
    ) -> Result<(CheckOutcome, Option<Vec<StageStats>>), String> {
        let url = Url::parse(raw_url).map_err(|e| format!("unparseable url: {e:?}"))?;
        let key = url.to_string();
        if let Some(core) = self.cache.get(&key, now) {
            return Ok((
                CheckOutcome {
                    body: finish_body(&core, true),
                    cached: true,
                    rediscovered: false,
                },
                None,
            ));
        }

        let (index, entry, provenance) = self.resolve(&url);
        // one budget question per audited check: a refused host degrades to
        // the single-attempt policy for this check and the refusal is counted
        let host = url.host().to_string();
        let retry = match &self.origin_budget {
            Some(ledger) if self.retry.retries_enabled() && !ledger.admit_retries(&host) => {
                RetryPolicy::single()
            }
            _ => self.retry,
        };
        let env = StudyEnv {
            web: self.world.web(),
            archive: self.world.archive(),
            now: self.study_time(),
            retry,
            cdx_timeout_ms: None,
            rescue: self.rescue.as_deref(),
        };
        let mut stats = empty_stats(&self.stages);
        let finding = analyze_link(&env, &self.stages, index, entry, &mut stats);
        if let Some(ledger) = &self.origin_budget {
            ledger.charge(&host, stats.iter().map(|s| s.retry_backoff_ms).sum());
        }
        let recommendation = recommend_for(&finding, self.world.archive());

        let verdict = if finding.genuinely_alive() {
            "alive"
        } else {
            "permanently-dead"
        };
        let mut obj = Object::new()
            .str("url", &key)
            .str("verdict", verdict)
            .str("live_status", &finding.live.status.to_string())
            .raw(
                "final_status",
                finding
                    .live
                    .record
                    .final_status()
                    .map(|c| c.as_u16().to_string())
                    .unwrap_or_else(|| "null".into()),
            )
            .bool("redirected", finding.live.was_redirected())
            .str("soft404", &format!("{:?}", finding.soft404))
            .str("archival", &format!("{:?}", finding.archival))
            .str("provenance", provenance.as_str());
        obj = match provenance {
            Provenance::Dataset => obj.num("dataset_index", index),
            _ => obj.raw("dataset_index", "null"),
        };
        obj = obj.raw("rescue", render_recommendation(recommendation.as_ref()));
        obj = obj.raw("rediscovery", render_rediscovery(finding.rediscovery.as_ref()));
        let rediscovered = finding.rediscovery.is_some();
        let core = obj.render();
        // `core` is a complete object; finish_body splices the cached flag in
        self.cache.insert(&key, core.clone(), now);
        Ok((
            CheckOutcome {
                body: finish_body(&core, false),
                cached: false,
                rediscovered,
            },
            Some(stats),
        ))
    }

    /// Where a URL's provenance and determinism seed come from.
    fn resolve(&self, url: &Url) -> (usize, DatasetEntry, Provenance) {
        let key = url.to_string();
        if let Some(&i) = self.index_of.get(&key) {
            return (i, self.dataset.entries[i].clone(), Provenance::Dataset);
        }
        if let Some(entry) = self.extra.get(&key) {
            // outside the parity set: index only needs to be stable per URL
            return (stable_index(&key), entry.clone(), Provenance::Wiki);
        }
        // never tagged: synthesize provenance around the study window
        let study = self.study_time();
        let entry = DatasetEntry {
            url: url.clone(),
            article: String::new(),
            added_at: study - permadead_net::Duration::years(5),
            marked_at: study,
            marked_by: "permadead-serve".into(),
        };
        (stable_index(&key), entry, Provenance::Unknown)
    }

    /// Sample URLs for load generation: every `step`-th dataset entry.
    pub fn sample_urls(&self, count: usize) -> Vec<String> {
        let n = self.dataset.len();
        if n == 0 {
            return Vec::new();
        }
        let step = (n / count.max(1)).max(1);
        self.dataset
            .entries
            .iter()
            .step_by(step)
            .take(count)
            .map(|e| e.url.to_string())
            .collect()
    }

    /// The load generator's URL universe: sampled dataset URLs paired with
    /// their site's popularity rank from the world's rank table (lower =
    /// more popular; unranked hosts report the universe tail). Open-loop
    /// schedules draw from this with Zipf weights so offered traffic has
    /// the same popularity head the paper observed.
    pub fn ranked_urls(&self, count: usize) -> Vec<(String, u32)> {
        let ranks = &self.world.web().ranks;
        self.sample_urls(count)
            .into_iter()
            .map(|raw| {
                let rank = Url::parse(&raw).map(|u| ranks.rank(u.host())).unwrap_or(ranks.universe + 1);
                (raw, rank)
            })
            .collect()
    }
}

/// Stable per-URL pipeline index for URLs outside the parity dataset. Masked
/// to keep `usize` arithmetic far from overflow anywhere the index is used
/// as a base offset.
fn stable_index(key: &str) -> usize {
    (fnv1a(key) & 0x7fff_ffff) as usize
}

/// Append the volatile `cached` field to a cached core object.
fn finish_body(core: &str, cached: bool) -> String {
    debug_assert!(core.ends_with('}'));
    let flag = if cached { "true" } else { "false" };
    format!("{},\"cached\":{}}}", &core[..core.len() - 1], flag)
}

fn render_rediscovery(r: Option<&permadead_core::RediscoveryRescue>) -> String {
    let Some(r) = r else {
        return "null".into();
    };
    Object::new()
        .str("new_url", &r.new_url)
        .num("title_similarity", format!("{:.4}", r.title_similarity))
        .num("content_similarity", format!("{:.4}", r.content_similarity))
        .render()
}

fn render_recommendation(rec: Option<&Recommendation>) -> String {
    let Some(rec) = rec else {
        return "null".into();
    };
    let obj = Object::new().str("kind", rec.kind());
    let obj = match rec {
        Recommendation::Untag { .. } => obj,
        Recommendation::PatchWith200Copy { captured, .. } => {
            obj.str("captured", &captured.date().to_string())
        }
        Recommendation::PatchWithRedirectCopy { captured, target, .. } => obj
            .str("captured", &captured.date().to_string())
            .str("target", &target.to_string()),
        Recommendation::FixTypo { intended, .. } => obj.str("intended", &intended.to_string()),
        Recommendation::PatchWithParamReorder { archived_spelling, .. } => {
            obj.str("archived_spelling", &archived_spelling.to_string())
        }
    };
    obj.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_core::Study;

    fn tiny_service() -> AuditService {
        let cfg = ScenarioConfig {
            rot_links: 40,
            ..ScenarioConfig::small(7)
        };
        AuditService::new(cfg, CacheConfig::default())
    }

    #[test]
    fn check_matches_batch_audit_for_every_dataset_url() {
        let svc = tiny_service();
        let batch = Study::run(
            &svc.scenario().web,
            &svc.scenario().archive,
            svc.dataset(),
            svc.study_time(),
        );
        let now = svc.study_time();
        for (i, finding) in batch.findings.iter().enumerate() {
            let url = finding.entry.url.to_string();
            let (out, stats) = svc.check(&url, now).unwrap();
            assert!(!out.cached, "first query for {url} must be a miss");
            assert!(stats.is_some());
            // bit-identical classification: same live status, soft-404
            // verdict, and archival class as the batch finding at index i
            let body = &out.body;
            assert!(
                body.contains(&format!("\"live_status\":\"{}\"", finding.live.status)),
                "live mismatch for {url}: {body}"
            );
            assert!(
                body.contains(&format!("\"soft404\":\"{:?}\"", finding.soft404)),
                "soft404 mismatch for {url}: {body}"
            );
            assert!(
                body.contains(&format!("\"archival\":\"{:?}\"", finding.archival)),
                "archival mismatch for {url}: {body}"
            );
            assert!(body.contains(&format!("\"dataset_index\":{i}")));
        }
    }

    #[test]
    fn repeat_query_hits_cache_and_spends_no_network() {
        let svc = tiny_service();
        let now = svc.study_time();
        let url = svc.dataset().entries[0].url.to_string();

        let (first, _) = svc.check(&url, now).unwrap();
        assert!(!first.cached);
        let hits_before = svc.cache_stats().hits;
        let net_before = svc.net_snapshot();

        let (second, stats) = svc.check(&url, now).unwrap();
        assert!(second.cached);
        assert!(stats.is_none(), "a cache hit runs zero stages");
        assert_eq!(svc.cache_stats().hits, hits_before + 1);
        let delta = svc.net_snapshot().diff(&net_before);
        assert_eq!(delta, MetricsSnapshot::default(), "cache hit issued simulated requests");

        // bodies agree except for the cached flag
        assert_eq!(
            first.body.replace("\"cached\":false", ""),
            second.body.replace("\"cached\":true", ""),
        );
    }

    #[test]
    fn unknown_url_is_audited_with_synthetic_provenance() {
        let svc = tiny_service();
        let (out, stats) = svc
            .check("http://never-heard-of.example.org/x", svc.study_time())
            .unwrap();
        assert!(out.body.contains("\"provenance\":\"unknown\""));
        assert!(out.body.contains("\"verdict\":"));
        assert!(stats.is_some());
    }

    #[test]
    fn bad_url_is_an_error() {
        let svc = tiny_service();
        assert!(svc.check("not a url at all", svc.study_time()).is_err());
    }

    #[test]
    fn snapshot_backed_service_answers_like_the_generated_one() {
        let cfg = ScenarioConfig {
            rot_links: 40,
            ..ScenarioConfig::small(7)
        };
        let generated = AuditService::new(cfg.clone(), CacheConfig::default());
        let world = crate::worldcache::world_from_scenario(Scenario::generate(cfg), "small");
        let snapped = AuditService::from_world(world, CacheConfig::default());

        assert_eq!(snapped.study_time(), generated.study_time());
        assert_eq!(snapped.dataset().len(), generated.dataset().len());
        assert_eq!(snapped.extra.len(), generated.extra.len());
        let now = generated.study_time();
        for url in generated.sample_urls(8) {
            let (a, _) = generated.check(&url, now).unwrap();
            let (b, _) = snapped.check(&url, now).unwrap();
            assert_eq!(a.body, b.body, "snapshot-backed divergence for {url}");
        }
    }

    #[test]
    fn incremental_reaudit_of_unchanged_world_changes_nothing() {
        let svc = tiny_service();
        let mut audit = svc.build_incremental();
        assert_eq!(audit.len(), svc.dataset().len());
        let out = svc.reaudit(&mut audit, &[0, 1], svc.study_time());
        assert_eq!(out.reaudited, 2);
        assert_eq!(out.changed, 0, "same clock, same world: no finding may move");
    }

    #[test]
    fn sample_urls_come_from_dataset() {
        let svc = tiny_service();
        let urls = svc.sample_urls(5);
        assert!(!urls.is_empty());
        for u in &urls {
            assert!(svc.index_of.contains_key(u));
        }
    }
}
