//! Consistent-hash partitioning of the verdict-cache key space.
//!
//! With one reactor, which shard a URL lands in only matters for lock
//! contention. With N reactors all hitting the cache concurrently, the
//! partition function becomes part of the serving architecture: every
//! reactor must agree on it without coordination (it is pure), keys must
//! spread evenly so no shard's lock becomes the hot one, and — because
//! operators resize shard counts between runs — growing the shard set
//! should move as few keys as possible, keeping most of a warm cache's
//! keys valid on their old shards.
//!
//! A modulo partition (`hash % shards`) satisfies the first two properties
//! and catastrophically fails the third: going from 8 to 9 shards remaps
//! ~8/9 of all keys. The classic fix is a **hash ring with virtual nodes**:
//! each shard owns `VNODES` pseudo-random points on a u64 circle, and a key
//! belongs to the first shard point clockwise from the key's own hash.
//! Adding a shard inserts only that shard's points, so only the arcs they
//! cut off move — an expected `1/(n+1)` of the key space, independent of
//! how the other shards are laid out.
//!
//! ```text
//!        0 ──────────────── u64::MAX
//!        │ s0 ─┐ ┌─ s2   ┌─ s1 …     (VNODES points per shard,
//!   ring ●─────●─●───────●─────●──▶   FNV-hashed "shard-i/vnode-j")
//!              ▲
//!        key hash falls here → owned by the next point clockwise (s2)
//! ```
//!
//! Everything is seeded from FNV-1a over stable strings, so the ring — and
//! therefore every key→shard decision — is bit-identical across runs,
//! processes, and reactor threads.

use crate::cache::fnv1a;

/// Virtual nodes per shard. 64 points per shard keeps the maximum shard
/// arc within ~2× the mean for the shard counts the cache uses (≤ 64)
/// while the ring stays small enough to binary-search in a few cache lines.
pub const VNODES: usize = 64;

/// SplitMix64 finalizer. FNV-1a of short, similar strings (vnode labels,
/// same-host URLs) differs mostly in its low bits, and ring arithmetic
/// compares *full* u64 values — unmixed, the points clump and some shards
/// own 3× their fair arc. One multiply-xor cascade restores avalanche;
/// applied to both ring points and key hashes so the circle stays uniform.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// A consistent-hash ring over `shards` partitions.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; ties broken by shard id so the
    /// ring is a pure function of the shard count.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// Build the ring for `shards` partitions (clamped to at least 1).
    pub fn new(shards: usize) -> HashRing {
        let shards = shards.max(1);
        let mut points: Vec<(u64, u32)> = (0..shards)
            .flat_map(|s| {
                (0..VNODES)
                    .map(move |v| (mix64(fnv1a(&format!("shard-{s}/vnode-{v}"))), s as u32))
            })
            .collect();
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// How many partitions the ring covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: hash it onto the circle, walk clockwise to
    /// the first shard point (wrapping past `u64::MAX` to the ring start).
    pub fn shard_for(&self, key: &str) -> usize {
        self.shard_for_hash(fnv1a(key))
    }

    /// Same, for a pre-computed FNV-1a hash (the cache hashes once and
    /// reuses it).
    pub fn shard_for_hash(&self, hash: u64) -> usize {
        self.owner_of_position(mix64(hash))
    }

    /// The shard owning a raw position on the circle (post-mixing).
    fn owner_of_position(&self, pos: u64) -> usize {
        let idx = self.points.partition_point(|&(p, _)| p < pos);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic() {
        let a = HashRing::new(8);
        let b = HashRing::new(8);
        for key in ["http://a.example/", "http://b.example/x?y=1", "zzz", ""] {
            assert_eq!(a.shard_for(key), b.shard_for(key));
        }
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn every_shard_owns_keys_and_load_is_balanced() {
        let ring = HashRing::new(8);
        let mut counts = vec![0usize; 8];
        for i in 0..8000 {
            counts[ring.shard_for(&format!("http://host{i}.example/page/{i}"))] += 1;
        }
        let mean = 1000.0;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > mean * 0.4 && (c as f64) < mean * 2.0,
                "shard {shard} holds {c} of 8000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction_of_keys() {
        // 8 → 9 shards: modulo would remap ~8/9 (~89%) of keys; the ring
        // moves an expected 1/9 (~11%). Assert well under the modulo
        // disaster and that every moved key went TO the new shard.
        let old = HashRing::new(8);
        let new = HashRing::new(9);
        let keys: Vec<String> = (0..4000).map(|i| format!("http://h{i}.example/p{i}")).collect();
        let mut moved = 0usize;
        for k in &keys {
            let (o, n) = (old.shard_for(k), new.shard_for(k));
            if o != n {
                moved += 1;
                assert_eq!(n, 8, "key {k} moved {o}→{n}, not to the new shard");
            }
        }
        let fraction = moved as f64 / keys.len() as f64;
        assert!(
            fraction < 0.30,
            "ring moved {moved}/{} keys ({fraction:.2}) on 8→9 growth",
            keys.len()
        );
        assert!(moved > 0, "a new shard that owns nothing is not sharding");
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = HashRing::new(1);
        for i in 0..100 {
            assert_eq!(ring.shard_for(&format!("k{i}")), 0);
        }
        // 0 is clamped like the cache clamps its shard count
        assert_eq!(HashRing::new(0).shards(), 1);
    }

    #[test]
    fn wraparound_past_the_last_point_lands_on_the_first() {
        let ring = HashRing::new(4);
        let last = ring.points.last().unwrap().0;
        if last < u64::MAX {
            let first_shard = ring.points[0].1 as usize;
            assert_eq!(ring.owner_of_position(last + 1), first_shard);
            assert_eq!(ring.owner_of_position(u64::MAX), first_shard);
        }
        // and a position sitting exactly ON a point belongs to that point
        let (p, s) = ring.points[ring.points.len() / 2];
        assert_eq!(ring.owner_of_position(p), s as usize);
    }
}
