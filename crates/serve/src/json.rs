//! The few grams of JSON the service needs: string quoting and a small
//! object builder. (The workspace is offline/std-only, and the responses are
//! flat objects — a serializer dependency would be all ceremony.)

/// Quote and escape `s` as a JSON string literal, including the quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental `{...}` builder; fields render in insertion order.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), quote(value)));
        self
    }

    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    pub fn num(self, key: &str, value: impl std::fmt::Display) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&quote(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("a\\b"), "\"a\\\\b\"");
        assert_eq!(quote("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_renders_in_order() {
        let o = Object::new()
            .str("url", "http://e.org/?a=1&b=2")
            .num("n", 3)
            .bool("cached", true)
            .opt_str("rec", None);
        assert_eq!(
            o.render(),
            "{\"url\":\"http://e.org/?a=1&b=2\",\"n\":3,\"cached\":true,\"rec\":null}"
        );
    }
}
