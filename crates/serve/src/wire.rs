//! Minimal HTTP/1.1 wire handling, parser-first: request bytes accumulate in
//! a per-connection buffer and [`parse_request`] is re-run as chunks arrive,
//! so the reactor can feed it from a nonblocking socket without ever parking
//! a thread on I/O. The service speaks just enough HTTP for its endpoints:
//! request-line, headers, and optional `Content-Length` body in; status,
//! headers, and body out.
//!
//! Limits are enforced *by the parser*, so a misbehaving client cannot
//! balloon a connection's memory: headers are capped at [`MAX_HEADER_BYTES`],
//! bodies at [`MAX_BODY_BYTES`], and a request that smells like smuggling —
//! duplicate or non-numeric `Content-Length` — is rejected outright rather
//! than guessed at. The parser also reports exactly how many bytes the
//! request consumed, so a pipelined follow-up request is never swallowed
//! into the current body.

use std::io::{Read, Write};

/// Hard caps on what we buffer from a socket.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, raw query string, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub query: Option<String>,
    pub body: String,
    /// Whether the client asked to reuse the connection after the response
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 only with an
    /// explicit `Connection: keep-alive`).
    pub keep_alive: bool,
}

/// Why a request could not be parsed — each maps to one 4xx.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Malformed request line or headers (incl. duplicate/non-numeric
    /// `Content-Length`) → 400.
    BadRequest,
    /// Headers or declared body exceeded the fixed caps → 413.
    TooLarge,
    /// Clean EOF before a request line (client connected and left).
    Closed,
}

impl WireError {
    /// The status code this parse failure answers with (0 = nothing to say).
    pub fn status(self) -> u16 {
        match self {
            WireError::BadRequest => 400,
            WireError::TooLarge => 413,
            WireError::Closed => 0,
        }
    }
}

/// One step of the incremental parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// Not enough bytes yet; read more and call again.
    Incomplete,
    /// A full request, plus exactly how many buffer bytes it used — the
    /// caller drains `consumed` and *only* `consumed`, so bytes of a
    /// pipelined next request stay in the buffer instead of being read
    /// into this request's body.
    Complete { request: HttpRequest, consumed: usize },
    /// Hopeless: answer with `err.status()` and close.
    Bad(WireError),
}

/// Find the end of the header block: the byte index just past the first
/// empty line. Tolerates bare-`\n` line endings like the blocking parser
/// always has.
fn headers_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0usize;
    for (i, &b) in buf.iter().enumerate() {
        if b == b'\n' {
            let line = &buf[line_start..i];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            if line.is_empty() && line_start > 0 {
                return Some(i + 1);
            }
            line_start = i + 1;
        }
    }
    None
}

/// Try to parse one request out of `buf`. Pure and restartable: callers
/// re-invoke it on the same (grown) buffer until it stops being
/// [`Parse::Incomplete`].
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_len) = headers_end(buf) else {
        // No terminator yet. A header block that has already outgrown the
        // cap will never become valid, so fail now instead of buffering
        // a drip-fed request-line forever.
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad(WireError::TooLarge);
        }
        return Parse::Incomplete;
    };
    if head_len > MAX_HEADER_BYTES {
        return Parse::Bad(WireError::TooLarge);
    }
    let head = String::from_utf8_lossy(&buf[..head_len]);
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Bad(WireError::BadRequest);
    };
    if !version.starts_with("HTTP/1.") {
        return Parse::Bad(WireError::BadRequest);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        if line.is_empty() {
            continue; // the terminator line itself
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Bad(WireError::BadRequest);
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Two Content-Length headers is the classic request-smuggling
            // shape; even two *agreeing* copies get a 400, per RFC 9112's
            // "reject the message" option, instead of a silent guess.
            if content_length.is_some() {
                return Parse::Bad(WireError::BadRequest);
            }
            // digits only: `usize::from_str` tolerates a leading `+`,
            // which RFC 9110's 1*DIGIT grammar does not
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Parse::Bad(WireError::BadRequest);
            }
            match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = Some(n),
                _ => return Parse::Bad(WireError::TooLarge),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    let consumed = head_len + content_length;
    if buf.len() < consumed {
        return Parse::Incomplete;
    }
    let body = String::from_utf8_lossy(&buf[head_len..consumed]).into_owned();
    Parse::Complete {
        request: HttpRequest {
            method: method.to_string(),
            path,
            query,
            body,
            keep_alive,
        },
        consumed,
    }
}

/// Read one request from a blocking stream — the incremental parser driven
/// by a read loop. Kept for tests and any synchronous caller; the server
/// itself feeds [`parse_request`] straight from the reactor.
pub fn read_request<S: Read>(stream: &mut S) -> std::io::Result<Result<HttpRequest, WireError>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf) {
            Parse::Complete { request, .. } => return Ok(Ok(request)),
            Parse::Bad(e) => return Ok(Err(e)),
            Parse::Incomplete => {}
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            // EOF with an incomplete request: nothing at all is a clean
            // hangup, a partial request is malformed.
            return Ok(Err(if buf.is_empty() { WireError::Closed } else { WireError::BadRequest }));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(&'static str, String)>,
    pub body: String,
}

impl HttpResponse {
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Prometheus exposition format.
    pub fn metrics(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        HttpResponse::json(
            status,
            format!("{{\"error\":{}}}", crate::json::quote(message)),
        )
    }

    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Render the full wire bytes (status line + headers + body) in one
    /// buffer, the shape the reactor queues for nonblocking writes.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Blocking convenience for synchronous callers (always
    /// `Connection: close`, matching the one-shot usage).
    pub fn write_to<W: Write>(&self, stream: &mut W) -> std::io::Result<()> {
        stream.write_all(&self.serialize(false))?;
        stream.flush()
    }
}

/// Reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Extract a query parameter's percent-decoded value.
pub fn query_param(query: Option<&str>, name: &str) -> Option<String> {
    for pair in query?.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == name {
            return Some(percent_decode(v));
        }
    }
    None
}

/// Decode `%XX` escapes and `+` (form-style space). Invalid escapes pass
/// through verbatim — an audit of a malformed URL should see what was sent.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let hex_val = |b: u8| -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                    out.push(hi * 16 + lo);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("http%3A%2F%2Fe.org%2Fp%3Fx%3D1"), "http://e.org/p?x=1");
        assert_eq!(percent_decode("plain"), "plain");
        // invalid escape survives
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_param_extraction() {
        let q = Some("url=http%3A%2F%2Fe.org%2F&limit=3");
        assert_eq!(query_param(q, "url").as_deref(), Some("http://e.org/"));
        assert_eq!(query_param(q, "limit").as_deref(), Some("3"));
        assert_eq!(query_param(q, "missing"), None);
        assert_eq!(query_param(None, "url"), None);
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(503), "Service Unavailable");
        assert_eq!(reason(418), "Unknown");
    }

    fn parse(raw: &str) -> Result<HttpRequest, WireError> {
        read_request(&mut std::io::Cursor::new(raw.as_bytes().to_vec())).unwrap()
    }

    #[test]
    fn request_parsing_roundtrip() {
        let req = parse("GET /check?url=x HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/check");
        assert_eq!(req.query.as_deref(), Some("url=x"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let req = parse("POST /batch HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn keep_alive_negotiation() {
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive);
        let old = parse("GET / HTTP/1.0\r\nHost: a\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn oversized_request_line_is_capped() {
        // one giant line with no newline at all must still hit the cap
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
        assert_eq!(parse(&raw), Err(WireError::TooLarge));
        let no_newline = "G".repeat(64 * 1024);
        assert_eq!(parse(&no_newline), Err(WireError::TooLarge));
    }

    #[test]
    fn oversized_headers_share_the_budget() {
        // many small header lines whose sum crosses the cap
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2048 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "v".repeat(16)));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw), Err(WireError::TooLarge));
    }

    #[test]
    fn eof_variants() {
        assert_eq!(parse(""), Err(WireError::Closed));
        assert_eq!(parse("GET / HTTP/1.1\r\n"), Err(WireError::BadRequest));
    }

    // ------ the hostile-request sweep: smuggling-shaped Content-Length ------

    #[test]
    fn duplicate_content_length_is_rejected() {
        // disagreeing copies: the smuggling classic
        let raw = "POST /batch HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 1\r\n\r\nabcd";
        assert_eq!(parse(raw), Err(WireError::BadRequest));
        // even agreeing copies are refused rather than guessed at
        let raw = "POST /batch HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        assert_eq!(parse(raw), Err(WireError::BadRequest));
    }

    #[test]
    fn nonnumeric_content_length_is_rejected() {
        for cl in ["abc", "-1", "4x", "0x10", "4 4", "+4"] {
            let raw = format!("POST /batch HTTP/1.1\r\nContent-Length: {cl}\r\n\r\nabcd");
            assert_eq!(parse(&raw), Err(WireError::BadRequest), "Content-Length: {cl}");
        }
    }

    #[test]
    fn oversized_declared_body_is_413_not_a_drop() {
        let raw = format!("POST /batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&raw), Err(WireError::TooLarge));
        // exactly at the cap is still fine (parser waits for the body)
        let raw = format!("POST /batch HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES}\r\n\r\n");
        assert_eq!(parse_request(raw.as_bytes()), Parse::Incomplete);
    }

    #[test]
    fn garbage_header_line_is_bad_request() {
        assert_eq!(parse("GET / HTTP/1.1\r\nnot-a-header\r\n\r\n"), Err(WireError::BadRequest));
        assert_eq!(parse("GET /\r\n\r\n"), Err(WireError::BadRequest));
        assert_eq!(parse("GET / SPDY/3\r\n\r\n"), Err(WireError::BadRequest));
    }

    // ------ incremental parsing: the reactor's view ------

    #[test]
    fn incremental_byte_by_byte() {
        let raw = b"POST /batch HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]),
                Parse::Incomplete,
                "premature completion at {cut} bytes"
            );
        }
        match parse_request(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.body, "xyz");
                assert_eq!(consumed, raw.len());
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn consumed_stops_at_the_request_boundary() {
        // a pipelined second request must NOT be eaten as body bytes
        let raw = b"POST /batch HTTP/1.1\r\nContent-Length: 2\r\n\r\nokGET /next HTTP/1.1\r\n\r\n";
        match parse_request(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.body, "ok");
                let rest = &raw[consumed..];
                match parse_request(rest) {
                    Parse::Complete { request, consumed } => {
                        assert_eq!(request.path, "/next");
                        assert_eq!(consumed, rest.len());
                    }
                    other => panic!("second request unparsed: {other:?}"),
                }
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn wire_error_statuses() {
        assert_eq!(WireError::BadRequest.status(), 400);
        assert_eq!(WireError::TooLarge.status(), 413);
        assert_eq!(WireError::Closed.status(), 0);
    }

    #[test]
    fn response_renders_headers() {
        let r = HttpResponse::text(503, "busy").with_header("Retry-After", "1");
        assert_eq!(r.status, 503);
        assert_eq!(r.headers, vec![("Retry-After", "1".to_string())]);
        let bytes = r.serialize(false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
        let ka = String::from_utf8(r.serialize(true)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"));
    }
}
