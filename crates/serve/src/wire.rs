//! Minimal HTTP/1.1 wire handling over `std::net::TcpStream`.
//!
//! The service speaks just enough HTTP for its four endpoints: request-line,
//! headers, and optional `Content-Length` body in; status, headers, and body
//! out; `Connection: close` on every response (one request per connection
//! keeps the worker pool's accounting trivial and is plenty for an audit
//! sidecar). Limits are enforced while *reading*, so a misbehaving client
//! cannot balloon a worker's memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard caps on what we read from a socket.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, raw query string, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub query: Option<String>,
    pub body: String,
}

/// Why a request could not be parsed — each maps to one 4xx.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Malformed request line or headers.
    BadRequest,
    /// Headers or body exceeded the fixed caps.
    TooLarge,
    /// Clean EOF before a request line (client connected and left).
    Closed,
}

/// Read one `\n`-terminated line into `out`, consuming at most `cap` bytes.
/// Returns the byte count consumed (`0` = EOF before any byte) or
/// [`WireError::TooLarge`] the moment the cap is crossed — the check runs
/// per buffered chunk, so a line drip-fed without a newline can never grow
/// past `cap` plus one internal buffer.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    out: &mut String,
    cap: usize,
) -> std::io::Result<Result<usize, WireError>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (found_newline, used) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                break; // EOF
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&available[..=i]);
                    (true, i + 1)
                }
                None => {
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if buf.len() > cap {
            return Ok(Err(WireError::TooLarge));
        }
        if found_newline {
            break;
        }
    }
    out.push_str(&String::from_utf8_lossy(&buf));
    Ok(Ok(buf.len()))
}

/// Read one request from the stream.
pub fn read_request<S: Read>(stream: &mut S) -> std::io::Result<Result<HttpRequest, WireError>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut header_bytes = match read_line_capped(&mut reader, &mut line, MAX_HEADER_BYTES)? {
        Ok(0) => return Ok(Err(WireError::Closed)),
        Ok(n) => n,
        Err(e) => return Ok(Err(e)),
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Err(WireError::BadRequest));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(WireError::BadRequest));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let method = method.to_string();

    let mut content_length: usize = 0;
    loop {
        let mut header = String::new();
        // request line and headers share one MAX_HEADER_BYTES budget
        match read_line_capped(&mut reader, &mut header, MAX_HEADER_BYTES - header_bytes)? {
            Ok(0) => return Ok(Err(WireError::BadRequest)), // EOF mid-headers
            Ok(n) => header_bytes += n,
            Err(e) => return Ok(Err(e)),
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                    Ok(_) => return Ok(Err(WireError::TooLarge)),
                    Err(_) => return Ok(Err(WireError::BadRequest)),
                }
            }
        }
    }

    let mut body_bytes = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body_bytes)?;
    }
    let body = String::from_utf8_lossy(&body_bytes).into_owned();
    Ok(Ok(HttpRequest {
        method,
        path,
        query,
        body,
    }))
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(&'static str, String)>,
    pub body: String,
}

impl HttpResponse {
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Prometheus exposition format.
    pub fn metrics(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        HttpResponse::json(
            status,
            format!("{{\"error\":{}}}", crate::json::quote(message)),
        )
    }

    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        stream.write_all(out.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Extract a query parameter's percent-decoded value.
pub fn query_param(query: Option<&str>, name: &str) -> Option<String> {
    for pair in query?.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == name {
            return Some(percent_decode(v));
        }
    }
    None
}

/// Decode `%XX` escapes and `+` (form-style space). Invalid escapes pass
/// through verbatim — an audit of a malformed URL should see what was sent.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let hex_val = |b: u8| -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                    out.push(hi * 16 + lo);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("http%3A%2F%2Fe.org%2Fp%3Fx%3D1"), "http://e.org/p?x=1");
        assert_eq!(percent_decode("plain"), "plain");
        // invalid escape survives
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_param_extraction() {
        let q = Some("url=http%3A%2F%2Fe.org%2F&limit=3");
        assert_eq!(query_param(q, "url").as_deref(), Some("http://e.org/"));
        assert_eq!(query_param(q, "limit").as_deref(), Some("3"));
        assert_eq!(query_param(q, "missing"), None);
        assert_eq!(query_param(None, "url"), None);
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(503), "Service Unavailable");
        assert_eq!(reason(418), "Unknown");
    }

    fn parse(raw: &str) -> Result<HttpRequest, WireError> {
        read_request(&mut std::io::Cursor::new(raw.as_bytes().to_vec())).unwrap()
    }

    #[test]
    fn request_parsing_roundtrip() {
        let req = parse("GET /check?url=x HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/check");
        assert_eq!(req.query.as_deref(), Some("url=x"));
        let req = parse("POST /batch HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn oversized_request_line_is_capped() {
        // one giant line with no newline at all must still hit the cap
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
        assert_eq!(parse(&raw), Err(WireError::TooLarge));
        let no_newline = "G".repeat(64 * 1024);
        assert_eq!(parse(&no_newline), Err(WireError::TooLarge));
    }

    #[test]
    fn oversized_headers_share_the_budget() {
        // many small header lines whose sum crosses the cap
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2048 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "v".repeat(16)));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw), Err(WireError::TooLarge));
    }

    #[test]
    fn eof_variants() {
        assert_eq!(parse(""), Err(WireError::Closed));
        assert_eq!(parse("GET / HTTP/1.1\r\n"), Err(WireError::BadRequest));
    }

    #[test]
    fn response_renders_headers() {
        let r = HttpResponse::text(503, "busy").with_header("Retry-After", "1");
        assert_eq!(r.status, 503);
        assert_eq!(r.headers, vec![("Retry-After", "1".to_string())]);
    }
}
