//! `serve-probe` — a std-only HTTP client for smoke tests.
//!
//! ```text
//! serve-probe <host:port> <path> [expect-substring]
//! serve-probe <host:port> --flood <N>
//! ```
//!
//! Default mode issues one GET, prints the status line and body to stdout,
//! and exits non-zero if the request fails, the status is not 200, or the
//! body does not contain the expected substring. `scripts/check.sh` drives
//! it against a freshly started `permadead serve` so CI needs no curl.
//!
//! `--flood N` is the concurrent-connection proof for the event-driven
//! server: open N sockets, *hold them all open* having sent only a partial
//! request line on each (so every one of them parks in the reactor's slab,
//! never reaching a worker), then — with all N still connected — issue a
//! normal `/healthz` request and require it to complete promptly. A
//! thread-per-connection server with a bounded pool dies here; the reactor
//! holds N fds and one buffer each. Exits non-zero if fewer than 99% of the
//! sockets connect or the probe request fails or takes over 5 seconds.
//! Running as a separate process keeps the fd load split between client and
//! server, so N can approach the per-process fd ceiling on both sides.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, path) = match (args.first(), args.get(1)) {
        (Some(a), Some(p)) => (a.clone(), p.clone()),
        _ => {
            eprintln!("usage: serve-probe <host:port> <path> [expect-substring]\n       serve-probe <host:port> --flood <N>");
            return ExitCode::FAILURE;
        }
    };
    if path == "--flood" {
        let n: usize = match args.get(2).and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => {
                eprintln!("serve-probe: --flood needs a connection count");
                return ExitCode::FAILURE;
            }
        };
        return flood(&addr, n);
    }
    let expect = args.get(2);

    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-probe: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if let Err(e) = stream.write_all(request.as_bytes()) {
        eprintln!("serve-probe: write: {e}");
        return ExitCode::FAILURE;
    }
    let mut response = String::new();
    if let Err(e) = stream.read_to_string(&mut response) {
        eprintln!("serve-probe: read: {e}");
        return ExitCode::FAILURE;
    }
    print!("{response}");
    if !response.starts_with("HTTP/1.1 200") {
        eprintln!("serve-probe: non-200 from {path}");
        return ExitCode::FAILURE;
    }
    if let Some(needle) = expect {
        if !response.contains(needle.as_str()) {
            eprintln!("serve-probe: body missing {needle:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn flood(addr: &str, n: usize) -> ExitCode {
    let mut held: Vec<TcpStream> = Vec::with_capacity(n);
    let started = Instant::now();
    for i in 0..n {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                // a partial request line: enough to occupy a connection
                // slot and a read buffer, never enough to reach a worker
                let _ = s.write_all(b"GET /healthz HT");
                held.push(s);
            }
            Err(e) => {
                // loopback connects shouldn't fail below the fd ceiling;
                // tolerate a tiny shortfall, fail on anything systemic
                if i * 100 < n * 99 {
                    eprintln!("serve-probe: flood connect #{i}/{n} failed: {e}");
                    return ExitCode::FAILURE;
                }
                break;
            }
        }
    }
    let opened = held.len();
    eprintln!(
        "serve-probe: holding {opened} idle connections ({}ms to open)",
        started.elapsed().as_millis()
    );

    // with every connection still parked, a fresh request must go through
    let t0 = Instant::now();
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-probe: probe connect under flood: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let request = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if let Err(e) = stream.write_all(request.as_bytes()) {
        eprintln!("serve-probe: probe write under flood: {e}");
        return ExitCode::FAILURE;
    }
    let mut response = String::new();
    if let Err(e) = stream.read_to_string(&mut response) {
        eprintln!("serve-probe: probe read under flood: {e}");
        return ExitCode::FAILURE;
    }
    let elapsed = t0.elapsed();
    if !response.starts_with("HTTP/1.1 200") || !response.contains("\"status\":\"ok\"") {
        eprintln!("serve-probe: bad /healthz under flood: {}", response.lines().next().unwrap_or(""));
        return ExitCode::FAILURE;
    }
    if elapsed > Duration::from_secs(5) {
        eprintln!("serve-probe: /healthz took {elapsed:?} under flood");
        return ExitCode::FAILURE;
    }
    println!(
        "flood ok: {opened} connections held, /healthz in {:.1}ms",
        elapsed.as_secs_f64() * 1e3
    );
    drop(held);
    ExitCode::SUCCESS
}
