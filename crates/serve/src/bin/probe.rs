//! `serve-probe` — a std-only HTTP client for smoke tests.
//!
//! ```text
//! serve-probe <host:port> <path> [expect-substring]
//! ```
//!
//! Issues one GET, prints the status line and body to stdout, and exits
//! non-zero if the request fails, the status is not 200, or the body does
//! not contain the expected substring. `scripts/check.sh` drives it against
//! a freshly started `permadead serve` so CI needs no curl.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, path) = match (args.first(), args.get(1)) {
        (Some(a), Some(p)) => (a.clone(), p.clone()),
        _ => {
            eprintln!("usage: serve-probe <host:port> <path> [expect-substring]");
            return ExitCode::FAILURE;
        }
    };
    let expect = args.get(2);

    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-probe: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if let Err(e) = stream.write_all(request.as_bytes()) {
        eprintln!("serve-probe: write: {e}");
        return ExitCode::FAILURE;
    }
    let mut response = String::new();
    if let Err(e) = stream.read_to_string(&mut response) {
        eprintln!("serve-probe: read: {e}");
        return ExitCode::FAILURE;
    }
    print!("{response}");
    if !response.starts_with("HTTP/1.1 200") {
        eprintln!("serve-probe: non-200 from {path}");
        return ExitCode::FAILURE;
    }
    if let Some(needle) = expect {
        if !response.contains(needle.as_str()) {
            eprintln!("serve-probe: body missing {needle:?}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
