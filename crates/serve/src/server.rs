//! The HTTP server: one or more event-driven reactor threads owning the
//! sockets, a crossbeam-channel worker pool for CPU-bound analysis, the
//! background watch scheduler, and admission control.
//!
//! **Transport/compute split.** Each reactor thread (an epoll readiness loop
//! from the vendored [`reactor`] crate) performs *all* socket I/O for the
//! connections it owns: it accepts, reads request bytes into per-connection
//! buffers, runs the incremental parser in [`crate::wire`], and writes
//! responses only when sockets are writable, tracking offsets across partial
//! writes ([`crate::conn`]). Complete requests are `try_send`-dispatched
//! into a **bounded** channel of [`Job`]s; workers pull from it, compute the
//! response, and hand it back through the owning reactor's completion queue
//! plus its wakeup pipe. A slow or stalled client therefore holds one buffer
//! and one fd — never a worker thread, and never a read/write timeout (the
//! old blocking path's 5s read and 250ms write timeouts are gone because
//! nothing blocks).
//!
//! **Scale-out.** `reactors: N` runs N reactor threads. Preferred layout:
//! every reactor binds its *own* listener on the same port via
//! `SO_REUSEPORT`, so the kernel shards the accept queue and no accept lock
//! exists in userspace. If the socket option can't be set (or `reuseport:
//! false`), the server falls back to a **sharded accept hand-off**: reactor
//! 0 owns the single listener and deals accepted sockets round-robin to its
//! peers through per-reactor hand-off queues + wakers. Either way a
//! connection lives its whole life on one reactor; workers route completions
//! back by the reactor index carried in the job. The verdict cache is
//! partitioned by consistent hashing over the URL ([`crate::partition`]), so
//! reactors and workers never serialize on one cache lock. Shutdown drains
//! gracefully: accepting stops immediately, idle connections close, and
//! in-flight requests get [`DRAIN_DEADLINE_MS`] to finish.
//!
//! When every worker is busy and the queue is full, the reactor queues a
//! `503 Service Unavailable` + `Retry-After` as an ordinary nonblocking
//! write — the one response cheap enough to produce without a worker. That
//! is the whole degradation story: bounded queue, bounded workers, bounded
//! connection table (`max_conns`), explicit back-pressure to the client
//! instead of unbounded memory growth.
//!
//! The same worker pool also executes the continuous-monitoring workload: a
//! background pump thread pops due re-checks off the [`permadead_sched`]
//! scheduler and enqueues them as jobs, so watch traffic and request traffic
//! share one capacity model. When the queue is full, re-checks yield to
//! connections and retry on the next tick — monitoring is the deferrable
//! workload.
//!
//! Endpoints:
//!
//! | route            | method | behaviour                                          |
//! |------------------|--------|----------------------------------------------------|
//! | `/check?url=U`   | GET    | audit one link; JSON verdict + rescue              |
//! | `/batch`         | POST   | newline-delimited URLs (bounded); JSON array       |
//! | `/watch`         | POST   | register newline-delimited URLs for re-checking    |
//! | `/watchlist`     | GET    | JSON state of every watched link                   |
//! | `/report`        | GET    | incremental study report over the batch dataset    |
//! | `/metrics`       | GET    | Prometheus text                                    |
//! | `/healthz`       | GET    | JSON: queue depth, workers, conns, watchlist size  |

use crate::conn::{Conn, ConnState, ReadStep, WriteStep};
use crate::metrics::ServeMetrics;
use crate::service::AuditService;
use crate::wire::{query_param, HttpRequest, HttpResponse, WireError};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use permadead_core::IncrementalAudit;
use permadead_net::{Duration, SimTime};
use permadead_sched::{Cadence, PolicySpec, Scheduler, SchedulerConfig, WatchSnapshot};
use permadead_url::Url;
use reactor::slab::Slab;
use reactor::{Events, Interest, Poll, Token, Waker};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// How the background monitoring workload behaves.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// The dead-link detection policy every watched link runs (IABot
    /// strikes, pywikibot weekly confirmation, or health scoring).
    pub policy: PolicySpec,
    /// Re-check interval policy.
    pub cadence: Cadence,
    /// Simulated seconds the watch clock advances per real second. Re-check
    /// cadences are day-scale, so the default maps one real second to one
    /// simulated day; `0` freezes the clock (tests drive it through
    /// `/debug/watch-advance`).
    pub sim_secs_per_real_sec: i64,
    /// Per-host re-checks per simulated UTC day; `None` = no politeness cap.
    pub host_budget_per_day: Option<u32>,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            policy: PolicySpec::default(),
            cadence: Cadence::Fixed { every: Duration::days(1) },
            sim_secs_per_real_sec: 86_400,
            host_budget_per_day: None,
        }
    }
}

/// Server shape: listener address and pool/queue/connection bounds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1; `0` picks an ephemeral port (the bound
    /// address is what [`ServerHandle::addr`] reports — callers must print
    /// *that*, not the requested port).
    pub port: u16,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Parsed requests allowed to wait for a worker before admission
    /// control starts refusing with 503.
    pub queue_cap: usize,
    /// Open connections the reactor will hold at once; beyond this, new
    /// arrivals get an immediate best-effort 503 (`--max-conns`).
    pub max_conns: usize,
    /// Kernel send-buffer size applied to every accepted socket; `None`
    /// leaves the kernel's autotuning alone. Pinning it bounds how much of
    /// a response the kernel absorbs for a stalled reader, which makes
    /// write back-pressure observable (the partial-write tests rely on it).
    pub sndbuf: Option<usize>,
    /// Maximum URLs accepted in one `POST /batch` (or `POST /watch`).
    pub max_batch: usize,
    /// Seconds advertised in `Retry-After` on an admission refusal.
    pub retry_after_secs: u32,
    /// Enable `/debug/sleep` and `/debug/watch-advance` (load tests exercise
    /// admission control and the watch clock with them).
    pub debug_endpoints: bool,
    /// Reactor threads. Each owns its own poll set, connection table, and —
    /// when `SO_REUSEPORT` is available — its own listener on the shared
    /// port. `max_conns` is enforced per reactor.
    pub reactors: usize,
    /// Allow the `SO_REUSEPORT` listener group (the default). `false` forces
    /// the sharded accept hand-off fallback, where reactor 0 owns the only
    /// listener — tests use this to exercise the fallback deterministically.
    pub reuseport: bool,
    /// The continuous-monitoring workload behind `POST /watch`.
    pub watch: WatchConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 4,
            queue_cap: 64,
            max_conns: 10_240,
            sndbuf: None,
            max_batch: 256,
            retry_after_secs: 1,
            debug_endpoints: false,
            reactors: 1,
            reuseport: true,
            watch: WatchConfig::default(),
        }
    }
}

/// One unit of worker-pool work: a parsed request off a connection, or a due
/// re-check pumped in by the watch scheduler. Workers never see a socket.
enum Job {
    Request {
        /// Index of the reactor that owns the connection — the worker routes
        /// the completion back through this reactor's queue and waker.
        reactor: usize,
        slot: usize,
        generation: u64,
        request: HttpRequest,
    },
    Recheck {
        id: usize,
        due: SimTime,
    },
}

/// A finished response on its way back to its reactor.
struct Completion {
    slot: usize,
    generation: u64,
    keep_alive: bool,
    response: HttpResponse,
}

/// One reactor's mailbox: what workers (completions) and sibling reactors
/// (hand-off sockets) push at it from outside its thread.
struct ReactorShared {
    /// Worker → reactor: finished responses awaiting a writable socket.
    completions: Mutex<VecDeque<Completion>>,
    /// Reactor 0 → this reactor, hand-off mode only: accepted sockets this
    /// reactor should adopt. Empty forever in the `SO_REUSEPORT` layout.
    handoff: Mutex<VecDeque<TcpStream>>,
    /// Pulls this reactor out of `epoll_wait` when a completion or hand-off
    /// lands, or shutdown begins.
    waker: Waker,
}

/// Everything workers and the reactors share.
struct Inner {
    service: AuditService,
    metrics: ServeMetrics,
    config: ServerConfig,
    started: Instant,
    shutdown: AtomicBool,
    /// A non-consuming view of the pending queue, for the depth gauge only
    /// (never `recv`d, so no job is ever stolen from the workers).
    queue_probe: Receiver<Job>,
    /// Per-reactor mailboxes, indexed by reactor id.
    reactors: Vec<ReactorShared>,
    /// The continuous-monitoring scheduler. Lock discipline: take briefly,
    /// never while holding another lock, and never across a network fetch —
    /// the fetch half of a re-check runs unlocked in the worker.
    watch: Mutex<Scheduler>,
    /// Simulated seconds added to the watch clock by `/debug/watch-advance`.
    watch_offset: AtomicI64,
    /// The incremental re-audit engine over the batch dataset, built lazily
    /// on the first dirty watcher or `GET /report` — a server that never
    /// watches and never asks for the report pays nothing. Lock discipline:
    /// never taken while holding the `watch` lock.
    reaudit: Mutex<Option<IncrementalAudit>>,
}

impl Inner {
    /// The serving clock for cache TTLs: study time plus wall-clock elapsed,
    /// mapped 1:1 (one real second = one simulated second). Analyses stay
    /// pinned at study time; only cache expiry advances.
    fn now_sim(&self) -> SimTime {
        self.service.study_time() + Duration::seconds(self.started.elapsed().as_secs() as i64)
    }

    /// The watch scheduler's clock: study time plus *scaled* wall-clock
    /// elapsed plus any debug advance. Deliberately separate from
    /// [`Self::now_sim`] — re-check cadences are day-scale, so the watch
    /// clock runs fast while cache TTLs keep their 1:1 mapping.
    fn watch_now(&self) -> SimTime {
        let real = self.started.elapsed().as_secs() as i64;
        self.service.study_time()
            + Duration::seconds(real.saturating_mul(self.config.watch.sim_secs_per_real_sec))
            + Duration::seconds(self.watch_offset.load(Ordering::SeqCst))
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    reactors: Vec<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Whether the listener group actually got `SO_REUSEPORT` (false = the
    /// hand-off fallback is active, or only one reactor runs).
    reuseport_active: bool,
}

impl ServerHandle {
    /// The *bound* address — with `port: 0` this carries the
    /// kernel-assigned ephemeral port, which is what tests and scripts
    /// must connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    pub fn service(&self) -> &AuditService {
        &self.inner.service
    }

    /// A point-in-time view of the watch scheduler (tests assert counter
    /// parity between this and `/metrics`).
    pub fn watch_snapshot(&self) -> WatchSnapshot {
        self.inner.watch.lock().snapshot()
    }

    /// How many reactor threads serve this listener group.
    pub fn reactor_count(&self) -> usize {
        self.inner.reactors.len()
    }

    /// Whether the kernel is sharding accepts via `SO_REUSEPORT` (false
    /// with one reactor, or when the hand-off fallback engaged).
    pub fn reuseport_active(&self) -> bool {
        self.reuseport_active
    }

    /// Stop accepting, drain in-flight work, and join every thread. Each
    /// reactor closes its idle connections immediately and gives requests
    /// already dispatched (or responses mid-write) up to
    /// [`DRAIN_DEADLINE_MS`] to finish before tearing down.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // each waker pulls its reactor out of epoll_wait; the reactor sees
        // the flag, drains gracefully, and drops its job sender. The pump
        // notices the flag within one tick and drops the last sender; with
        // all of them gone the workers drain the queue and exit.
        for shared in &self.inner.reactors {
            let _ = shared.waker.wake();
        }
        for h in self.reactors.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Poll-set token for the listening socket (connection slots use their slab
/// keys, which can never reach these sentinels).
const TOKEN_LISTENER: Token = Token(usize::MAX);
/// Poll-set token for the wakeup pipe.
const TOKEN_WAKER: Token = Token(usize::MAX - 1);

/// How long a draining reactor waits for dispatched requests and mid-flight
/// writes to finish before tearing the remaining connections down. Idle
/// connections close immediately, so shutdown with no work in flight is
/// instant — the deadline only bounds responses the server still owes.
pub const DRAIN_DEADLINE_MS: u64 = 2_000;

/// Try to build an `SO_REUSEPORT` listener group: `n` independent listeners
/// on the same loopback port, each destined for its own reactor. Any
/// failure (option unsupported, later bind losing a race) rolls the whole
/// attempt back — the caller falls back to the hand-off layout.
fn try_reuseport_group(port: u16, n: usize) -> Option<(SocketAddr, Vec<TcpListener>)> {
    const LOOPBACK: [u8; 4] = [127, 0, 0, 1];
    let first = reactor::bind_reuseport(LOOPBACK, port).ok()?;
    first.set_nonblocking(true).ok()?;
    let addr = first.local_addr().ok()?;
    let mut group = vec![first];
    for _ in 1..n {
        let l = reactor::bind_reuseport(LOOPBACK, addr.port()).ok()?;
        l.set_nonblocking(true).ok()?;
        group.push(l);
    }
    Some((addr, group))
}

/// Bind the listener group, spawn the reactors + pool + watch pump, and
/// return immediately.
pub fn start(service: AuditService, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let n = config.reactors.max(1);
    // Listener layout: with one reactor a plain bind (no socket options to
    // negotiate); with several, prefer the SO_REUSEPORT group and fall back
    // to one listener owned by reactor 0 that deals sockets to its peers.
    let mut listeners: Vec<Option<TcpListener>>;
    let addr: SocketAddr;
    let mut reuseport_active = false;
    let group = if n > 1 && config.reuseport { try_reuseport_group(config.port, n) } else { None };
    match group {
        Some((bound, group)) => {
            addr = bound;
            listeners = group.into_iter().map(Some).collect();
            reuseport_active = true;
        }
        None => {
            let listener = TcpListener::bind(("127.0.0.1", config.port))?;
            listener.set_nonblocking(true)?;
            addr = listener.local_addr()?;
            listeners = Vec::with_capacity(n);
            listeners.push(Some(listener));
            for _ in 1..n {
                listeners.push(None);
            }
        }
    }

    // One poll set + waker per reactor; wakers live in Inner so workers and
    // siblings can reach them, polls move into their reactor threads.
    let mut polls = Vec::with_capacity(n);
    let mut shared = Vec::with_capacity(n);
    for listener in &listeners {
        let poll = Poll::new()?;
        let waker = Waker::new(&poll, TOKEN_WAKER)?;
        if let Some(l) = listener {
            poll.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        }
        polls.push(poll);
        shared.push(ReactorShared {
            completions: Mutex::new(VecDeque::new()),
            handoff: Mutex::new(VecDeque::new()),
            waker,
        });
    }

    let (tx, rx) = bounded::<Job>(config.queue_cap.max(1));
    let scheduler = Scheduler::new(SchedulerConfig {
        policy: config.watch.policy,
        cadence: config.watch.cadence,
        host_budget_per_day: config.watch.host_budget_per_day,
    });
    let inner = Arc::new(Inner {
        service,
        metrics: ServeMetrics::with_reactors(n),
        config: config.clone(),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        queue_probe: rx.clone(),
        reactors: shared,
        watch: Mutex::new(scheduler),
        watch_offset: AtomicI64::new(0),
        reaudit: Mutex::new(None),
    });
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = rx.clone();
            let inner = inner.clone();
            std::thread::spawn(move || worker_loop(&inner, rx))
        })
        .collect();
    drop(rx);

    let pump = {
        let inner = inner.clone();
        let tx = tx.clone();
        std::thread::spawn(move || pump_loop(&inner, tx))
    };
    let handoff_mode = n > 1 && !reuseport_active;
    let reactors: Vec<JoinHandle<()>> = polls
        .into_iter()
        .zip(listeners)
        .enumerate()
        .map(|(idx, (poll, listener))| {
            let inner = inner.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                Reactor {
                    inner: &inner,
                    idx,
                    handoff_mode,
                    rr: 0,
                    poll,
                    listener,
                    tx,
                    conns: Slab::new(),
                    accept_paused: false,
                    closed_since_pause: false,
                    draining: false,
                }
                .run()
            })
        })
        .collect();
    drop(tx);

    Ok(ServerHandle {
        addr,
        inner,
        reactors,
        pump: Some(pump),
        workers,
        reuseport_active,
    })
}

/// One worker: CPU-bound request handling and watch re-checks, zero socket
/// I/O. The pool is fixed-size, so a panicking handler must not kill the
/// worker — it is caught, counted, and answered with a 500 (the blocking
/// path used to silently drop the connection instead).
fn worker_loop(inner: &Inner, rx: Receiver<Job>) {
    for job in rx.iter() {
        match job {
            Job::Request {
                reactor,
                slot,
                generation,
                request,
            } => {
                inner.metrics.inflight.fetch_add(1, Ordering::Relaxed);
                let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(inner, &request)
                }));
                inner.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
                let (route_name, response) = match handled {
                    Ok(pair) => pair,
                    Err(_) => {
                        inner.metrics.worker_panics_total.incr();
                        ("other", HttpResponse::error(500, "internal error"))
                    }
                };
                inner.metrics.count_route(route_name);
                inner.metrics.count_status(response.status);
                // route the completion back to the reactor owning the socket
                let shared = &inner.reactors[reactor];
                shared.completions.lock().push_back(Completion {
                    slot,
                    generation,
                    keep_alive: request.keep_alive,
                    response,
                });
                let _ = shared.waker.wake();
            }
            Job::Recheck { id, due } => {
                let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_recheck(inner, id, due)
                }));
                if handled.is_err() {
                    inner.metrics.worker_panics_total.incr();
                }
            }
        }
    }
}

/// The background scheduler thread: every tick, pop everything due on the
/// watch clock and feed it through the worker pool. With an empty watchlist
/// this is a 25ms heartbeat and nothing else — a server that never sees
/// `POST /watch` behaves bit-identically to one without the subsystem.
fn pump_loop(inner: &Inner, tx: Sender<Job>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        let now = inner.watch_now();
        loop {
            let popped = inner.watch.lock().pop_due(now);
            let Some((id, due)) = popped else { break };
            match tx.try_send(Job::Recheck { id, due }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // queue saturated with connections: put the event back
                    // (undoing the pop's counters) and retry next tick —
                    // monitoring yields to interactive traffic
                    inner.watch.lock().requeue(id, due);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// The worker half of one re-check: fetch unlocked, then apply the outcome
/// under the scheduler lock. Tag/revival counters live in the scheduler
/// itself, so `/metrics` is in exact parity with the watcher states by
/// construction.
fn handle_recheck(inner: &Inner, id: usize, due: SimTime) {
    let url = inner.watch.lock().watcher(id).url.clone();
    let (check, _retry) = inner.service.live_recheck(&url, due);
    let mut sched = inner.watch.lock();
    sched.apply(id, due, check.is_final_200());
    // Drain the scheduler's dirty set (every watcher that flipped state,
    // deduplicated) and resolve each to its batch-dataset index while the
    // lock is still held; watched URLs outside the dataset have no
    // memoized finding to maintain and are simply dropped.
    let dirty = sched.take_dirty();
    let indices: Vec<usize> = dirty
        .iter()
        .filter_map(|&w| inner.service.dataset_index_of(&sched.watcher(w).url.to_string()))
        .collect();
    drop(sched);
    if indices.is_empty() {
        return;
    }
    // O(changed): re-run exactly the flipped links at the flip instant. The
    // engine builds on the first flip; afterwards `GET /report` reflects
    // every watch transition without a full-study re-run.
    let mut guard = inner.reaudit.lock();
    let audit = guard.get_or_insert_with(|| inner.service.build_incremental());
    let outcome = inner.service.reaudit(audit, &indices, due);
    // counters move before the lock drops, so anything that observes the
    // updated report also observes them
    inner.metrics.reaudit_links_total.add(outcome.reaudited as u64);
    inner.metrics.reaudit_changed_total.add(outcome.changed as u64);
}

/// Seconds a refused client should wait before retrying, scaled by how much
/// work is already queued ahead of it. The configured `retry_after_secs` used
/// to be advertised verbatim — so every client refused during a burst came
/// back after the same fixed delay into a queue that had not drained, got
/// refused again, and synchronized into a retry stampede. Scaling by queue
/// occupancy spreads the herd: the fuller the queue at refusal time, the
/// longer the advertised wait, capped at a minute.
fn retry_after_secs(inner: &Inner) -> u32 {
    let base = inner.config.retry_after_secs.max(1);
    let occupied = inner.queue_probe.len() as u32;
    base.saturating_mul(1 + occupied).min(60)
}

/// One event loop's owned state: poll set, listener (absent on hand-off
/// peers), connection slab, and a job-sender clone whose drop (on exit)
/// helps release the workers.
struct Reactor<'a> {
    inner: &'a Arc<Inner>,
    /// This reactor's index into `Inner::reactors` and the metrics slots.
    idx: usize,
    /// Reactor 0 owns the only listener and deals sockets to its peers.
    handoff_mode: bool,
    /// Round-robin cursor for hand-off dealing.
    rr: usize,
    poll: Poll,
    listener: Option<TcpListener>,
    tx: Sender<Job>,
    conns: Slab<Conn<TcpStream>>,
    /// The listener is out of the poll set (fd table exhausted); resume
    /// once a connection closes.
    accept_paused: bool,
    closed_since_pause: bool,
    /// Shutdown drain in progress: no new accepts, keep-alive connections
    /// close after their in-flight response instead of rearming.
    draining: bool,
}

impl Reactor<'_> {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            // The 500ms timeout is a safety net only — completions and
            // shutdown arrive through the waker, readiness through epoll.
            if self.poll.poll(&mut events, Some(std::time::Duration::from_millis(500))).is_err() {
                break;
            }
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let batch: Vec<reactor::Event> = events.iter().collect();
            let mut accept_ready = false;
            for ev in batch {
                match ev.token() {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.inner.reactors[self.idx].waker.drain(),
                    Token(slot) => self.on_conn_event(slot, ev),
                }
            }
            self.adopt_handoffs();
            self.drain_completions();
            if accept_ready {
                self.accept_burst();
            }
            self.maybe_resume_accept();
        }
        self.drain_gracefully();
    }

    /// Graceful drain: stop accepting now, close idle connections now, and
    /// give connections the server owes a response (request dispatched, or
    /// bytes mid-write) up to [`DRAIN_DEADLINE_MS`] to finish.
    fn drain_gracefully(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poll.deregister(listener.as_raw_fd());
        }
        // sockets dealt to us but never adopted: refuse by closing (drop)
        self.inner.reactors[self.idx].handoff.lock().clear();
        // idle (Reading) connections owe nothing — close immediately
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Reading))
            .map(|(slot, _)| slot)
            .collect();
        for slot in idle {
            self.close_conn(slot);
        }
        let deadline = Instant::now() + std::time::Duration::from_millis(DRAIN_DEADLINE_MS);
        let mut events = Events::with_capacity(256);
        while !self.conns.is_empty() && Instant::now() < deadline {
            if self.poll.poll(&mut events, Some(std::time::Duration::from_millis(25))).is_err() {
                break;
            }
            let batch: Vec<reactor::Event> = events.iter().collect();
            for ev in batch {
                match ev.token() {
                    TOKEN_LISTENER => {}
                    TOKEN_WAKER => self.inner.reactors[self.idx].waker.drain(),
                    Token(slot) => self.on_conn_event(slot, ev),
                }
            }
            self.drain_completions();
        }
        // teardown whatever outlived the deadline; closing the fds also
        // evicts them from the poll set, and dropping `tx` (when `self`
        // drops) helps release the workers
        let abandoned = self.conns.drain().len() as i64;
        self.inner.metrics.open_connections.fetch_sub(abandoned, Ordering::Relaxed);
        self.inner.metrics.reactors[self.idx].open_connections.store(0, Ordering::Relaxed);
    }

    /// Adopt sockets reactor 0 dealt to this reactor (hand-off mode only).
    fn adopt_handoffs(&mut self) {
        loop {
            let stream = self.inner.reactors[self.idx].handoff.lock().pop_front();
            let Some(stream) = stream else { break };
            self.install(stream);
        }
    }

    /// Take ownership of an accepted socket: tune it, enforce `max_conns`
    /// (per reactor), and register it for readiness. Shared by the accept
    /// path and the hand-off adoption path.
    fn install(&mut self, mut stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        if let Some(bytes) = self.inner.config.sndbuf {
            let _ = reactor::set_send_buffer_size(stream.as_raw_fd(), bytes);
        }
        if self.conns.len() >= self.inner.config.max_conns.max(1) {
            self.inner.metrics.rejected_total.incr();
            self.inner.metrics.count_status(503);
            let resp = HttpResponse::error(503, "server at capacity, retry later")
                .with_header("Retry-After", retry_after_secs(self.inner).to_string());
            // best-effort single write: the socket buffer is empty, so it
            // succeeds unless the client already vanished (drop closes)
            let _ = std::io::Write::write(&mut stream, &resp.serialize(false));
            return;
        }
        let fd = stream.as_raw_fd();
        let (slot, generation) = self.conns.insert(Conn::new(stream, 0));
        if let Some(conn) = self.conns.get_mut(slot) {
            conn.generation = generation;
        }
        if self.poll.register(fd, Token(slot), Interest::READABLE).is_err() {
            self.conns.remove(slot);
            return;
        }
        self.inner.metrics.open_connections.fetch_add(1, Ordering::Relaxed);
        let mine = &self.inner.metrics.reactors[self.idx];
        mine.open_connections.fetch_add(1, Ordering::Relaxed);
        mine.accepted_total.incr();
    }

    /// Accept until `EAGAIN`. In hand-off mode reactor 0 deals sockets
    /// round-robin across the group; otherwise (and for its own share) the
    /// accepting reactor installs them locally. On fd-table exhaustion the
    /// listener leaves the poll set until a connection closes, instead of
    /// spinning on a readable-but-unacceptable listener.
    fn accept_burst(&mut self) {
        let group = self.inner.reactors.len();
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.handoff_mode {
                        self.rr = (self.rr + 1) % group;
                        if self.rr != self.idx {
                            let peer = &self.inner.reactors[self.rr];
                            peer.handoff.lock().push_back(stream);
                            let _ = peer.waker.wake();
                            continue;
                        }
                    }
                    self.install(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    // ENFILE/EMFILE: no fd for the next accept — pause
                    self.pause_accept();
                    break;
                }
                // transient (ECONNABORTED etc.): the level-triggered poll
                // re-reports the listener if more arrivals are pending
                Err(_) => break,
            }
        }
    }

    fn pause_accept(&mut self) {
        if let (false, Some(listener)) = (self.accept_paused, &self.listener) {
            let _ = self.poll.deregister(listener.as_raw_fd());
            self.accept_paused = true;
            self.closed_since_pause = false;
        }
    }

    fn maybe_resume_accept(&mut self) {
        let Some(listener) = &self.listener else { return };
        if self.accept_paused
            && self.closed_since_pause
            && self
                .poll
                .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)
                .is_ok()
        {
            self.accept_paused = false;
        }
    }

    fn on_conn_event(&mut self, slot: usize, ev: reactor::Event) {
        let Some(conn) = self.conns.get_mut(slot) else {
            return; // closed earlier in this same batch
        };
        match conn.state {
            ConnState::Reading => {
                if ev.is_readable() || ev.is_closed() {
                    self.advance_reading(slot, true);
                }
            }
            ConnState::Writing { .. } => {
                if ev.is_writable() || ev.is_closed() {
                    self.drive_write(slot);
                }
            }
            ConnState::Dispatched => {
                // Interest is NONE while a worker holds the request, but
                // epoll always reports hard errors. A dead peer's slot is
                // reclaimed now; the completion will miss the generation
                // and be counted as an aborted write.
                if ev.is_closed() {
                    self.close_conn(slot);
                }
            }
        }
    }

    /// Drive a `Reading` connection: optionally pull bytes off the socket,
    /// then act on the parse result. `do_read = false` is the keep-alive
    /// path where a pipelined request may already be buffered.
    fn advance_reading(&mut self, slot: usize, do_read: bool) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let step = if do_read { conn.read_step() } else { conn.try_parse() };
        match step {
            ReadStep::More => {}
            ReadStep::Closed => self.close_conn(slot),
            ReadStep::Bad(err) => {
                // parse failures are answered, not dropped: 400 for
                // malformed bytes, 413 for anything over the caps
                self.inner.metrics.count_route("other");
                self.inner.metrics.count_status(err.status());
                let response = match err {
                    WireError::TooLarge => HttpResponse::error(413, "request too large"),
                    _ => HttpResponse::error(400, "malformed request"),
                };
                if let Some(conn) = self.conns.get_mut(slot) {
                    conn.queue_response(response.serialize(false), true);
                }
                self.drive_write(slot);
            }
            ReadStep::Request(request) => self.dispatch(slot, request),
        }
    }

    /// Hand a complete request to the worker pool, or refuse it with the
    /// admission-control 503 — now an ordinary queued nonblocking write
    /// instead of the old acceptor-inline blocking one.
    fn dispatch(&mut self, slot: usize, request: HttpRequest) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let generation = conn.generation;
        let fd = conn.stream.as_raw_fd();
        match self.tx.try_send(Job::Request {
            reactor: self.idx,
            slot,
            generation,
            request,
        }) {
            Ok(()) => {
                self.inner.metrics.reactors[self.idx].dispatched_total.incr();
                // park: no readiness wanted until the worker answers
                let _ = self.poll.reregister(fd, Token(slot), Interest::NONE);
            }
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.rejected_total.incr();
                self.inner.metrics.count_status(503);
                let resp = HttpResponse::error(503, "server at capacity, retry later")
                    .with_header("Retry-After", retry_after_secs(self.inner).to_string());
                if let Some(conn) = self.conns.get_mut(slot) {
                    conn.started = None; // refusals don't sample latency
                    conn.queue_response(resp.serialize(false), true);
                }
                self.drive_write(slot);
            }
            Err(TrySendError::Disconnected(_)) => self.close_conn(slot),
        }
    }

    /// Move a worker's finished responses onto their sockets. Stale
    /// completions — the client vanished while its request was computing —
    /// count as aborted writes: a response existed and was never delivered.
    fn drain_completions(&mut self) {
        loop {
            let completion = self.inner.reactors[self.idx].completions.lock().pop_front();
            let Some(c) = completion else { break };
            match self.conns.get_gen_mut(c.slot, c.generation) {
                None => {
                    self.inner.metrics.write_aborted_total.incr();
                    self.inner.metrics.reactors[self.idx].write_aborted_total.incr();
                }
                Some(conn) => {
                    conn.queue_response(c.response.serialize(c.keep_alive), !c.keep_alive);
                    self.drive_write(c.slot);
                }
            }
        }
    }

    /// Push queued bytes; on back-pressure wait for writability, on success
    /// close or (keep-alive) rearm for the next request.
    fn drive_write(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let fd = conn.stream.as_raw_fd();
        match conn.write_step() {
            WriteStep::Done => {
                if let Some(started) = conn.started.take() {
                    self.inner.metrics.observe_latency(started.elapsed().as_secs_f64());
                }
                let close_after = matches!(conn.state, ConnState::Writing { close_after: true });
                // draining: the response the server owed is delivered, and
                // keep-alive must not admit new requests past the drain
                if close_after || self.draining {
                    self.close_conn(slot);
                } else {
                    conn.reset_for_next_request();
                    let _ = self.poll.reregister(fd, Token(slot), Interest::READABLE);
                    // a pipelined request may already be buffered; serve it
                    // without waiting for new readiness
                    self.advance_reading(slot, false);
                }
            }
            WriteStep::Blocked => {
                let _ = self.poll.reregister(fd, Token(slot), Interest::WRITABLE);
            }
            WriteStep::Aborted(_undelivered) => {
                self.inner.metrics.write_aborted_total.incr();
                self.inner.metrics.reactors[self.idx].write_aborted_total.incr();
                if let Some(started) = conn.started.take() {
                    self.inner.metrics.observe_latency(started.elapsed().as_secs_f64());
                }
                self.close_conn(slot);
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if self.conns.remove(slot).is_some() {
            self.inner.metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.inner.metrics.reactors[self.idx].open_connections.fetch_sub(1, Ordering::Relaxed);
            self.closed_since_pause = true;
        }
    }
}

fn route(inner: &Inner, req: &HttpRequest) -> (&'static str, HttpResponse) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", handle_healthz(inner)),
        ("GET", "/metrics") => ("metrics", handle_metrics(inner)),
        ("GET", "/check") => ("check", handle_check(inner, req)),
        ("POST", "/batch") => ("batch", handle_batch(inner, req)),
        ("POST", "/watch") => ("watch", handle_watch(inner, req)),
        ("GET", "/watchlist") => ("watchlist", handle_watchlist(inner)),
        ("GET", "/report") => ("report", handle_report(inner)),
        ("GET", "/debug/sleep") if inner.config.debug_endpoints => {
            let ms: u64 = query_param(req.query.as_deref(), "ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100);
            std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
            ("other", HttpResponse::text(200, "slept\n"))
        }
        ("GET", "/debug/watch-advance") if inner.config.debug_endpoints => {
            let secs: i64 = query_param(req.query.as_deref(), "secs")
                .and_then(|v| v.parse().ok())
                .unwrap_or(86_400);
            inner.watch_offset.fetch_add(secs.max(0), Ordering::SeqCst);
            ("other", HttpResponse::text(200, format!("watch clock at {}\n", inner.watch_now())))
        }
        ("GET", _) => ("other", HttpResponse::error(404, "no such endpoint")),
        (_, "/check" | "/batch" | "/metrics" | "/healthz" | "/watch" | "/watchlist" | "/report") => {
            ("other", HttpResponse::error(405, "method not allowed"))
        }
        _ => ("other", HttpResponse::error(404, "no such endpoint")),
    }
}

/// `/healthz`: liveness plus the numbers an operator triages with — how
/// much work is queued, how many hands are on deck, how many sockets are
/// open, and how big the monitoring population is.
fn handle_healthz(inner: &Inner) -> HttpResponse {
    let watchlist = inner.watch.lock().len();
    HttpResponse::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"pending\":{},\"workers\":{},\"reactors\":{},\"conns\":{},\"watchlist\":{}}}",
            inner.queue_probe.len(),
            inner.config.workers.max(1),
            inner.reactors.len(),
            inner.metrics.open_connections.load(Ordering::Relaxed).max(0),
            watchlist,
        ),
    )
}

fn handle_metrics(inner: &Inner) -> HttpResponse {
    let watch = inner.watch.lock().snapshot();
    let text = inner.metrics.render_prometheus(
        &inner.service.cache_stats(),
        &inner.service.net_snapshot(),
        inner.queue_probe.len(),
        &inner.service.origin_budget_snapshot(),
        &watch,
        inner.service.rescue_index_pages(),
    );
    HttpResponse::metrics(text)
}

fn handle_check(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let Some(url) = query_param(req.query.as_deref(), "url") else {
        return HttpResponse::error(400, "missing url parameter");
    };
    match inner.service.check(&url, inner.now_sim()) {
        Ok((outcome, stats)) => {
            if let Some(stats) = stats {
                inner.metrics.merge_stage_stats(&stats);
            }
            if outcome.rediscovered {
                inner.metrics.rescue_rescued_total.incr();
            }
            HttpResponse::json(200, outcome.body)
        }
        Err(msg) => HttpResponse::error(400, &msg),
    }
}

fn handle_batch(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let urls: Vec<&str> = req
        .body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if urls.is_empty() {
        return HttpResponse::error(400, "empty batch");
    }
    if urls.len() > inner.config.max_batch {
        return HttpResponse::error(
            413,
            &format!("batch of {} exceeds limit {}", urls.len(), inner.config.max_batch),
        );
    }
    let now = inner.now_sim();
    let mut items = Vec::with_capacity(urls.len());
    for url in urls {
        match inner.service.check(url, now) {
            Ok((outcome, stats)) => {
                if let Some(stats) = stats {
                    inner.metrics.merge_stage_stats(&stats);
                }
                if outcome.rediscovered {
                    inner.metrics.rescue_rescued_total.incr();
                }
                items.push(outcome.body);
            }
            Err(msg) => items.push(
                crate::json::Object::new()
                    .str("url", url)
                    .str("error", &msg)
                    .render(),
            ),
        }
    }
    HttpResponse::json(200, format!("{{\"results\":[{}]}}", items.join(",")))
}

/// `POST /watch`: register newline-delimited URLs for continuous
/// re-checking. Registration is idempotent per URL; the first check comes
/// due immediately (at the current watch clock) and the cadence policy
/// takes over from there.
fn handle_watch(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let urls: Vec<&str> = req
        .body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if urls.is_empty() {
        return HttpResponse::error(400, "empty watch request");
    }
    if urls.len() > inner.config.max_batch {
        return HttpResponse::error(
            413,
            &format!("watch batch of {} exceeds limit {}", urls.len(), inner.config.max_batch),
        );
    }
    let now = inner.watch_now();
    let mut registered = 0usize;
    let mut invalid = 0usize;
    let mut sched = inner.watch.lock();
    for raw in urls {
        match Url::parse(raw) {
            Ok(url) => {
                if sched.watch(url, now).is_some() {
                    registered += 1;
                }
            }
            Err(_) => invalid += 1,
        }
    }
    let watchlist = sched.len();
    drop(sched);
    HttpResponse::json(
        200,
        format!(
            "{{\"registered\":{registered},\"invalid\":{invalid},\"watchlist\":{watchlist}}}"
        ),
    )
}

/// `GET /report`: the paper's headline counters over the batch dataset,
/// maintained incrementally. The first request (or the first watched-link
/// flip) builds the engine with one full pipeline pass; afterwards every
/// watch transition updates the aggregate at O(changed) cost and this
/// endpoint just renders the maintained counters.
fn handle_report(inner: &Inner) -> HttpResponse {
    let mut guard = inner.reaudit.lock();
    let audit = guard.get_or_insert_with(|| inner.service.build_incremental());
    let report = audit.report();
    let as_of = audit.now();
    drop(guard);
    let body = crate::json::Object::new()
        .str("label", &report.label)
        .num("n", report.n)
        .str("as_of", &as_of.to_string())
        .num("dns_failure", report.dns_failure)
        .num("timeout", report.timeout)
        .num("not_found", report.not_found)
        .num("final_200", report.final_200)
        .num("other", report.other)
        .num("genuinely_alive", report.genuinely_alive)
        .num("alive_via_redirect", report.alive_via_redirect)
        .num("post_marking_checked", report.post_marking_checked)
        .num("post_marking_erroneous", report.post_marking_erroneous)
        .num("had_200_copy", report.had_200_copy)
        .num("had_3xx_only", report.had_3xx_only)
        .num("valid_3xx", report.valid_3xx)
        .num("had_erroneous_only", report.had_erroneous_only)
        .num("nothing_before_marking", report.nothing_before_marking)
        .num("never_archived", report.never_archived)
        .num("archived_before_posting", report.archived_before_posting)
        .num("first_capture_after_posting", report.first_capture_after_posting)
        .num("same_day_capture", report.same_day_capture)
        .num("same_day_erroneous", report.same_day_erroneous)
        .num("directory_level_zero", report.directory_level_zero)
        .num("hostname_level_zero", report.hostname_level_zero)
        .num("unique_edit_distance_1", report.unique_edit_distance_1)
        .num("param_reorder_rescuable", report.param_reorder_rescuable)
        .num("rediscovery_rescued", report.rediscovery_rescued)
        .render();
    HttpResponse::json(200, body)
}

/// `GET /watchlist`: the full monitoring state, one object per watched link.
fn handle_watchlist(inner: &Inner) -> HttpResponse {
    let sched = inner.watch.lock();
    let snap = sched.snapshot();
    let items: Vec<String> = sched
        .watchers()
        .iter()
        .map(|w| {
            let mut obj = crate::json::Object::new()
                .str("url", &w.url.to_string())
                .str("state", w.state().as_str())
                .num("strikes", w.evidence() as usize)
                .num("checks", w.checks as usize)
                .num("revivals", w.revivals as usize);
            obj = match w.tagged_at() {
                Some(t) => obj.str("tagged_at", &t.to_string()),
                None => obj.raw("tagged_at", "null"),
            };
            obj.render()
        })
        .collect();
    drop(sched);
    HttpResponse::json(200, watchlist_json(&snap, &items))
}

/// Assemble the `/watchlist` response body. Split out (and `pub(crate)` for
/// the tests) because the old inline `format!` spliced the policy and state
/// names into the JSON unescaped — correct for today's static names, but a
/// quote or backslash in a future policy label would have emitted invalid
/// JSON. Everything dynamic now goes through [`crate::json::quote`].
/// `items` must already be rendered JSON objects (the watcher URLs inside
/// them are escaped by the [`crate::json::Object`] builder).
pub(crate) fn watchlist_json(snap: &permadead_sched::WatchSnapshot, items: &[String]) -> String {
    let states: Vec<String> = snap
        .states
        .iter()
        .iter()
        .map(|(name, count)| format!("{}:{count}", crate::json::quote(name)))
        .collect();
    format!(
        "{{\"size\":{},\"pending\":{},\"tagged\":{},\"policy\":{},\"states\":{{{}}},\"watchers\":[{}]}}",
        snap.watchlist,
        snap.pending,
        snap.tagged_now,
        crate::json::quote(snap.policy),
        states.join(","),
        items.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::watchlist_json;
    use permadead_sched::WatchSnapshot;

    /// The watchlist body must stay valid JSON even when the policy name (or
    /// a future state label) carries quotes, backslashes, or control bytes —
    /// exactly the hostile inputs the old inline `format!` forwarded raw.
    #[test]
    fn watchlist_json_escapes_hostile_policy_names() {
        let snap = WatchSnapshot {
            watchlist: 3,
            pending: 1,
            tagged_now: 2,
            policy: "evil\"name\\with\tcontrol",
            ..WatchSnapshot::default()
        };
        let body = watchlist_json(&snap, &[]);
        assert!(
            body.contains("\"policy\":\"evil\\\"name\\\\with\\tcontrol\""),
            "policy not escaped: {body}"
        );
        // No raw quote survives inside the policy value: stripping every
        // escaped sequence first must leave only the structural quotes.
        let stripped = body.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(
            stripped.matches('"').count() % 2,
            0,
            "unbalanced quotes, body is not valid JSON: {body}"
        );
        assert!(body.contains("\"states\":{\"healthy\":0"));
        assert!(body.ends_with("\"watchers\":[]}"));
    }

    #[test]
    fn watchlist_json_renders_counts_and_items() {
        let mut snap = WatchSnapshot {
            watchlist: 2,
            pending: 5,
            tagged_now: 1,
            ..WatchSnapshot::default()
        };
        snap.states.healthy = 1;
        snap.states.tagged = 1;
        let items = vec!["{\"url\":\"http://a.example/\"}".to_string()];
        let body = watchlist_json(&snap, &items);
        assert!(body.starts_with("{\"size\":2,\"pending\":5,\"tagged\":1,"));
        assert!(body.contains("\"tagged\":1},\"watchers\":[{\"url\":\"http://a.example/\"}]}"));
    }
}
