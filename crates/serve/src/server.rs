//! The HTTP server: acceptor thread, crossbeam-channel worker pool, the
//! background watch scheduler, and admission control.
//!
//! Accepted connections are `try_send`-dispatched into a **bounded** channel
//! of [`Job`]s. Workers pull from it; when every worker is busy and the queue
//! is full the acceptor answers `503 Service Unavailable` with `Retry-After`
//! *itself* and closes the socket — the one response cheap enough to serve
//! inline. That is the whole degradation story: bounded queue, bounded
//! workers, explicit back-pressure to the client instead of unbounded memory
//! growth.
//!
//! The same worker pool also executes the continuous-monitoring workload: a
//! background pump thread pops due re-checks off the [`permadead_sched`]
//! scheduler and enqueues them as jobs, so watch traffic and request traffic
//! share one capacity model. When the queue is full, re-checks yield to
//! connections and retry on the next tick — monitoring is the deferrable
//! workload.
//!
//! Endpoints:
//!
//! | route            | method | behaviour                                          |
//! |------------------|--------|----------------------------------------------------|
//! | `/check?url=U`   | GET    | audit one link; JSON verdict + rescue              |
//! | `/batch`         | POST   | newline-delimited URLs (bounded); JSON array       |
//! | `/watch`         | POST   | register newline-delimited URLs for re-checking    |
//! | `/watchlist`     | GET    | JSON state of every watched link                   |
//! | `/report`        | GET    | incremental study report over the batch dataset    |
//! | `/metrics`       | GET    | Prometheus text                                    |
//! | `/healthz`       | GET    | JSON: queue depth, worker count, watchlist size    |

use crate::metrics::ServeMetrics;
use crate::service::AuditService;
use crate::wire::{query_param, read_request, HttpRequest, HttpResponse, WireError};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use permadead_core::IncrementalAudit;
use permadead_net::{Duration, SimTime};
use permadead_sched::{Cadence, PolicySpec, Scheduler, SchedulerConfig, WatchSnapshot};
use permadead_url::Url;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// How the background monitoring workload behaves.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// The dead-link detection policy every watched link runs (IABot
    /// strikes, pywikibot weekly confirmation, or health scoring).
    pub policy: PolicySpec,
    /// Re-check interval policy.
    pub cadence: Cadence,
    /// Simulated seconds the watch clock advances per real second. Re-check
    /// cadences are day-scale, so the default maps one real second to one
    /// simulated day; `0` freezes the clock (tests drive it through
    /// `/debug/watch-advance`).
    pub sim_secs_per_real_sec: i64,
    /// Per-host re-checks per simulated UTC day; `None` = no politeness cap.
    pub host_budget_per_day: Option<u32>,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            policy: PolicySpec::default(),
            cadence: Cadence::Fixed { every: Duration::days(1) },
            sim_secs_per_real_sec: 86_400,
            host_budget_per_day: None,
        }
    }
}

/// Server shape: listener address and pool/queue/batch bounds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1; `0` picks an ephemeral port.
    pub port: u16,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before admission
    /// control starts refusing with 503.
    pub queue_cap: usize,
    /// Maximum URLs accepted in one `POST /batch` (or `POST /watch`).
    pub max_batch: usize,
    /// Seconds advertised in `Retry-After` on an admission refusal.
    pub retry_after_secs: u32,
    /// Enable `/debug/sleep` and `/debug/watch-advance` (load tests exercise
    /// admission control and the watch clock with them).
    pub debug_endpoints: bool,
    /// The continuous-monitoring workload behind `POST /watch`.
    pub watch: WatchConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 4,
            queue_cap: 64,
            max_batch: 256,
            retry_after_secs: 1,
            debug_endpoints: false,
            watch: WatchConfig::default(),
        }
    }
}

/// One unit of worker-pool work: an accepted connection, or a due re-check
/// pumped in by the watch scheduler.
enum Job {
    Conn(TcpStream),
    Recheck { id: usize, due: SimTime },
}

/// Everything workers share.
struct Inner {
    service: AuditService,
    metrics: ServeMetrics,
    config: ServerConfig,
    started: Instant,
    shutdown: AtomicBool,
    /// A non-consuming view of the pending queue, for the depth gauge only
    /// (never `recv`d, so no job is ever stolen from the workers).
    queue_probe: Receiver<Job>,
    /// The continuous-monitoring scheduler. Lock discipline: take briefly,
    /// never while holding another lock, and never across a network fetch —
    /// the fetch half of a re-check runs unlocked in the worker.
    watch: Mutex<Scheduler>,
    /// Simulated seconds added to the watch clock by `/debug/watch-advance`.
    watch_offset: AtomicI64,
    /// The incremental re-audit engine over the batch dataset, built lazily
    /// on the first dirty watcher or `GET /report` — a server that never
    /// watches and never asks for the report pays nothing. Lock discipline:
    /// never taken while holding the `watch` lock.
    reaudit: Mutex<Option<IncrementalAudit>>,
}

impl Inner {
    /// The serving clock for cache TTLs: study time plus wall-clock elapsed,
    /// mapped 1:1 (one real second = one simulated second). Analyses stay
    /// pinned at study time; only cache expiry advances.
    fn now_sim(&self) -> SimTime {
        self.service.study_time() + Duration::seconds(self.started.elapsed().as_secs() as i64)
    }

    /// The watch scheduler's clock: study time plus *scaled* wall-clock
    /// elapsed plus any debug advance. Deliberately separate from
    /// [`Self::now_sim`] — re-check cadences are day-scale, so the watch
    /// clock runs fast while cache TTLs keep their 1:1 mapping.
    fn watch_now(&self) -> SimTime {
        let real = self.started.elapsed().as_secs() as i64;
        self.service.study_time()
            + Duration::seconds(real.saturating_mul(self.config.watch.sim_secs_per_real_sec))
            + Duration::seconds(self.watch_offset.load(Ordering::SeqCst))
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    pub fn service(&self) -> &AuditService {
        &self.inner.service
    }

    /// A point-in-time view of the watch scheduler (tests assert counter
    /// parity between this and `/metrics`).
    pub fn watch_snapshot(&self) -> WatchSnapshot {
        self.inner.watch.lock().snapshot()
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // unblock the acceptor's blocking accept() with one throwaway
        // connection; it sees the flag and exits, dropping its sender. The
        // pump notices the flag within one tick and drops the other sender;
        // with both gone the workers drain the queue and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind, spawn the pool and the watch pump, and return immediately.
pub fn start(service: AuditService, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let addr = listener.local_addr()?;
    let (tx, rx) = bounded::<Job>(config.queue_cap.max(1));
    let scheduler = Scheduler::new(SchedulerConfig {
        policy: config.watch.policy,
        cadence: config.watch.cadence,
        host_budget_per_day: config.watch.host_budget_per_day,
    });
    let inner = Arc::new(Inner {
        service,
        metrics: ServeMetrics::new(),
        config: config.clone(),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        queue_probe: rx.clone(),
        watch: Mutex::new(scheduler),
        watch_offset: AtomicI64::new(0),
        reaudit: Mutex::new(None),
    });
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = rx.clone();
            let inner = inner.clone();
            std::thread::spawn(move || {
                for job in rx.iter() {
                    // The pool is fixed-size: a panicking handler must not
                    // kill the worker, or the pool silently shrinks until no
                    // thread is left to answer queued jobs.
                    let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        match job {
                            Job::Conn(stream) => handle_connection(&inner, stream),
                            Job::Recheck { id, due } => handle_recheck(&inner, id, due),
                        }
                    }));
                    if handled.is_err() {
                        inner.metrics.worker_panics_total.incr();
                    }
                }
            })
        })
        .collect();
    drop(rx);

    let pump = {
        let inner = inner.clone();
        let tx = tx.clone();
        std::thread::spawn(move || pump_loop(&inner, tx))
    };
    let acceptor = {
        let inner = inner.clone();
        std::thread::spawn(move || accept_loop(listener, tx, &inner))
    };

    Ok(ServerHandle {
        addr,
        inner,
        acceptor: Some(acceptor),
        pump: Some(pump),
        workers,
    })
}

/// The background scheduler thread: every tick, pop everything due on the
/// watch clock and feed it through the worker pool. With an empty watchlist
/// this is a 25ms heartbeat and nothing else — a server that never sees
/// `POST /watch` behaves bit-identically to one without the subsystem.
fn pump_loop(inner: &Inner, tx: Sender<Job>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        let now = inner.watch_now();
        loop {
            let popped = inner.watch.lock().pop_due(now);
            let Some((id, due)) = popped else { break };
            match tx.try_send(Job::Recheck { id, due }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // queue saturated with connections: put the event back
                    // (undoing the pop's counters) and retry next tick —
                    // monitoring yields to interactive traffic
                    inner.watch.lock().requeue(id, due);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// The worker half of one re-check: fetch unlocked, then apply the outcome
/// under the scheduler lock. Tag/revival counters live in the scheduler
/// itself, so `/metrics` is in exact parity with the watcher states by
/// construction.
fn handle_recheck(inner: &Inner, id: usize, due: SimTime) {
    let url = inner.watch.lock().watcher(id).url.clone();
    let (check, _retry) = inner.service.live_recheck(&url, due);
    let mut sched = inner.watch.lock();
    sched.apply(id, due, check.is_final_200());
    // Drain the scheduler's dirty set (every watcher that flipped state,
    // deduplicated) and resolve each to its batch-dataset index while the
    // lock is still held; watched URLs outside the dataset have no
    // memoized finding to maintain and are simply dropped.
    let dirty = sched.take_dirty();
    let indices: Vec<usize> = dirty
        .iter()
        .filter_map(|&w| inner.service.dataset_index_of(&sched.watcher(w).url.to_string()))
        .collect();
    drop(sched);
    if indices.is_empty() {
        return;
    }
    // O(changed): re-run exactly the flipped links at the flip instant. The
    // engine builds on the first flip; afterwards `GET /report` reflects
    // every watch transition without a full-study re-run.
    let mut guard = inner.reaudit.lock();
    let audit = guard.get_or_insert_with(|| inner.service.build_incremental());
    let outcome = inner.service.reaudit(audit, &indices, due);
    // counters move before the lock drops, so anything that observes the
    // updated report also observes them
    inner.metrics.reaudit_links_total.add(outcome.reaudited as u64);
    inner.metrics.reaudit_changed_total.add(outcome.changed as u64);
}

fn accept_loop(listener: TcpListener, tx: Sender<Job>, inner: &Inner) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break; // tx drops here; workers drain the queue and exit
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(Job::Conn(stream)) {
            Ok(()) => {}
            Err(TrySendError::Full(Job::Conn(mut stream))) => {
                inner.metrics.rejected_total.incr();
                inner.metrics.count_status(503);
                // Best-effort refusal: a rejected client that never reads
                // must not stall the acceptor on a full socket buffer.
                let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(250)));
                let resp = HttpResponse::error(503, "server at capacity, retry later")
                    .with_header("Retry-After", retry_after_secs(inner).to_string());
                let _ = resp.write_to(&mut stream);
            }
            Err(TrySendError::Full(Job::Recheck { .. })) => unreachable!("acceptor sends Conn"),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Seconds a refused client should wait before retrying, scaled by how much
/// work is already queued ahead of it. The configured `retry_after_secs` used
/// to be advertised verbatim — so every client refused during a burst came
/// back after the same fixed delay into a queue that had not drained, got
/// refused again, and synchronized into a retry stampede. Scaling by queue
/// occupancy spreads the herd: the fuller the queue at refusal time, the
/// longer the advertised wait, capped at a minute.
fn retry_after_secs(inner: &Inner) -> u32 {
    let base = inner.config.retry_after_secs.max(1);
    let occupied = inner.queue_probe.len() as u32;
    base.saturating_mul(1 + occupied).min(60)
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    let started = Instant::now();
    let request = match read_request(&mut stream) {
        Ok(Ok(req)) => req,
        Ok(Err(WireError::Closed)) => return, // shutdown poke / port scan
        Ok(Err(WireError::TooLarge)) => {
            respond(inner, &mut stream, "other", HttpResponse::error(413, "request too large"));
            return;
        }
        Ok(Err(WireError::BadRequest)) => {
            respond(inner, &mut stream, "other", HttpResponse::error(400, "malformed request"));
            return;
        }
        Err(_) => return, // socket error mid-read; nothing to answer
    };

    inner.metrics.inflight.fetch_add(1, Ordering::Relaxed);
    // decrement via a drop guard so a panicking handler can't leak the gauge
    struct InflightGuard<'a>(&'a ServeMetrics);
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            self.0.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _inflight = InflightGuard(&inner.metrics);
    let (route, response) = route(inner, &request);
    respond(inner, &mut stream, route, response);
    inner.metrics.observe_latency(started.elapsed().as_secs_f64());
}

fn respond(inner: &Inner, stream: &mut TcpStream, route: &str, response: HttpResponse) {
    inner.metrics.count_route(route);
    inner.metrics.count_status(response.status);
    let _ = response.write_to(stream);
}

fn route(inner: &Inner, req: &HttpRequest) -> (&'static str, HttpResponse) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", handle_healthz(inner)),
        ("GET", "/metrics") => ("metrics", handle_metrics(inner)),
        ("GET", "/check") => ("check", handle_check(inner, req)),
        ("POST", "/batch") => ("batch", handle_batch(inner, req)),
        ("POST", "/watch") => ("watch", handle_watch(inner, req)),
        ("GET", "/watchlist") => ("watchlist", handle_watchlist(inner)),
        ("GET", "/report") => ("report", handle_report(inner)),
        ("GET", "/debug/sleep") if inner.config.debug_endpoints => {
            let ms: u64 = query_param(req.query.as_deref(), "ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100);
            std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
            ("other", HttpResponse::text(200, "slept\n"))
        }
        ("GET", "/debug/watch-advance") if inner.config.debug_endpoints => {
            let secs: i64 = query_param(req.query.as_deref(), "secs")
                .and_then(|v| v.parse().ok())
                .unwrap_or(86_400);
            inner.watch_offset.fetch_add(secs.max(0), Ordering::SeqCst);
            ("other", HttpResponse::text(200, format!("watch clock at {}\n", inner.watch_now())))
        }
        ("GET", _) => ("other", HttpResponse::error(404, "no such endpoint")),
        (_, "/check" | "/batch" | "/metrics" | "/healthz" | "/watch" | "/watchlist" | "/report") => {
            ("other", HttpResponse::error(405, "method not allowed"))
        }
        _ => ("other", HttpResponse::error(404, "no such endpoint")),
    }
}

/// `/healthz`: liveness plus the three numbers an operator triages with —
/// how much work is queued, how many hands are on deck, and how big the
/// monitoring population is.
fn handle_healthz(inner: &Inner) -> HttpResponse {
    let watchlist = inner.watch.lock().len();
    HttpResponse::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"pending\":{},\"workers\":{},\"watchlist\":{}}}",
            inner.queue_probe.len(),
            inner.config.workers.max(1),
            watchlist,
        ),
    )
}

fn handle_metrics(inner: &Inner) -> HttpResponse {
    let watch = inner.watch.lock().snapshot();
    let text = inner.metrics.render_prometheus(
        &inner.service.cache_stats(),
        &inner.service.net_snapshot(),
        inner.queue_probe.len(),
        &inner.service.origin_budget_snapshot(),
        &watch,
        inner.service.rescue_index_pages(),
    );
    HttpResponse::metrics(text)
}

fn handle_check(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let Some(url) = query_param(req.query.as_deref(), "url") else {
        return HttpResponse::error(400, "missing url parameter");
    };
    match inner.service.check(&url, inner.now_sim()) {
        Ok((outcome, stats)) => {
            if let Some(stats) = stats {
                inner.metrics.merge_stage_stats(&stats);
            }
            if outcome.rediscovered {
                inner.metrics.rescue_rescued_total.incr();
            }
            HttpResponse::json(200, outcome.body)
        }
        Err(msg) => HttpResponse::error(400, &msg),
    }
}

fn handle_batch(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let urls: Vec<&str> = req
        .body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if urls.is_empty() {
        return HttpResponse::error(400, "empty batch");
    }
    if urls.len() > inner.config.max_batch {
        return HttpResponse::error(
            413,
            &format!("batch of {} exceeds limit {}", urls.len(), inner.config.max_batch),
        );
    }
    let now = inner.now_sim();
    let mut items = Vec::with_capacity(urls.len());
    for url in urls {
        match inner.service.check(url, now) {
            Ok((outcome, stats)) => {
                if let Some(stats) = stats {
                    inner.metrics.merge_stage_stats(&stats);
                }
                if outcome.rediscovered {
                    inner.metrics.rescue_rescued_total.incr();
                }
                items.push(outcome.body);
            }
            Err(msg) => items.push(
                crate::json::Object::new()
                    .str("url", url)
                    .str("error", &msg)
                    .render(),
            ),
        }
    }
    HttpResponse::json(200, format!("{{\"results\":[{}]}}", items.join(",")))
}

/// `POST /watch`: register newline-delimited URLs for continuous
/// re-checking. Registration is idempotent per URL; the first check comes
/// due immediately (at the current watch clock) and the cadence policy
/// takes over from there.
fn handle_watch(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let urls: Vec<&str> = req
        .body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if urls.is_empty() {
        return HttpResponse::error(400, "empty watch request");
    }
    if urls.len() > inner.config.max_batch {
        return HttpResponse::error(
            413,
            &format!("watch batch of {} exceeds limit {}", urls.len(), inner.config.max_batch),
        );
    }
    let now = inner.watch_now();
    let mut registered = 0usize;
    let mut invalid = 0usize;
    let mut sched = inner.watch.lock();
    for raw in urls {
        match Url::parse(raw) {
            Ok(url) => {
                if sched.watch(url, now).is_some() {
                    registered += 1;
                }
            }
            Err(_) => invalid += 1,
        }
    }
    let watchlist = sched.len();
    drop(sched);
    HttpResponse::json(
        200,
        format!(
            "{{\"registered\":{registered},\"invalid\":{invalid},\"watchlist\":{watchlist}}}"
        ),
    )
}

/// `GET /report`: the paper's headline counters over the batch dataset,
/// maintained incrementally. The first request (or the first watched-link
/// flip) builds the engine with one full pipeline pass; afterwards every
/// watch transition updates the aggregate at O(changed) cost and this
/// endpoint just renders the maintained counters.
fn handle_report(inner: &Inner) -> HttpResponse {
    let mut guard = inner.reaudit.lock();
    let audit = guard.get_or_insert_with(|| inner.service.build_incremental());
    let report = audit.report();
    let as_of = audit.now();
    drop(guard);
    let body = crate::json::Object::new()
        .str("label", &report.label)
        .num("n", report.n)
        .str("as_of", &as_of.to_string())
        .num("dns_failure", report.dns_failure)
        .num("timeout", report.timeout)
        .num("not_found", report.not_found)
        .num("final_200", report.final_200)
        .num("other", report.other)
        .num("genuinely_alive", report.genuinely_alive)
        .num("alive_via_redirect", report.alive_via_redirect)
        .num("post_marking_checked", report.post_marking_checked)
        .num("post_marking_erroneous", report.post_marking_erroneous)
        .num("had_200_copy", report.had_200_copy)
        .num("had_3xx_only", report.had_3xx_only)
        .num("valid_3xx", report.valid_3xx)
        .num("had_erroneous_only", report.had_erroneous_only)
        .num("nothing_before_marking", report.nothing_before_marking)
        .num("never_archived", report.never_archived)
        .num("archived_before_posting", report.archived_before_posting)
        .num("first_capture_after_posting", report.first_capture_after_posting)
        .num("same_day_capture", report.same_day_capture)
        .num("same_day_erroneous", report.same_day_erroneous)
        .num("directory_level_zero", report.directory_level_zero)
        .num("hostname_level_zero", report.hostname_level_zero)
        .num("unique_edit_distance_1", report.unique_edit_distance_1)
        .num("param_reorder_rescuable", report.param_reorder_rescuable)
        .num("rediscovery_rescued", report.rediscovery_rescued)
        .render();
    HttpResponse::json(200, body)
}

/// `GET /watchlist`: the full monitoring state, one object per watched link.
fn handle_watchlist(inner: &Inner) -> HttpResponse {
    let sched = inner.watch.lock();
    let snap = sched.snapshot();
    let items: Vec<String> = sched
        .watchers()
        .iter()
        .map(|w| {
            let mut obj = crate::json::Object::new()
                .str("url", &w.url.to_string())
                .str("state", w.state().as_str())
                .num("strikes", w.evidence() as usize)
                .num("checks", w.checks as usize)
                .num("revivals", w.revivals as usize);
            obj = match w.tagged_at() {
                Some(t) => obj.str("tagged_at", &t.to_string()),
                None => obj.raw("tagged_at", "null"),
            };
            obj.render()
        })
        .collect();
    drop(sched);
    HttpResponse::json(200, watchlist_json(&snap, &items))
}

/// Assemble the `/watchlist` response body. Split out (and `pub(crate)` for
/// the tests) because the old inline `format!` spliced the policy and state
/// names into the JSON unescaped — correct for today's static names, but a
/// quote or backslash in a future policy label would have emitted invalid
/// JSON. Everything dynamic now goes through [`crate::json::quote`].
/// `items` must already be rendered JSON objects (the watcher URLs inside
/// them are escaped by the [`crate::json::Object`] builder).
pub(crate) fn watchlist_json(snap: &permadead_sched::WatchSnapshot, items: &[String]) -> String {
    let states: Vec<String> = snap
        .states
        .iter()
        .iter()
        .map(|(name, count)| format!("{}:{count}", crate::json::quote(name)))
        .collect();
    format!(
        "{{\"size\":{},\"pending\":{},\"tagged\":{},\"policy\":{},\"states\":{{{}}},\"watchers\":[{}]}}",
        snap.watchlist,
        snap.pending,
        snap.tagged_now,
        crate::json::quote(snap.policy),
        states.join(","),
        items.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::watchlist_json;
    use permadead_sched::WatchSnapshot;

    /// The watchlist body must stay valid JSON even when the policy name (or
    /// a future state label) carries quotes, backslashes, or control bytes —
    /// exactly the hostile inputs the old inline `format!` forwarded raw.
    #[test]
    fn watchlist_json_escapes_hostile_policy_names() {
        let snap = WatchSnapshot {
            watchlist: 3,
            pending: 1,
            tagged_now: 2,
            policy: "evil\"name\\with\tcontrol",
            ..WatchSnapshot::default()
        };
        let body = watchlist_json(&snap, &[]);
        assert!(
            body.contains("\"policy\":\"evil\\\"name\\\\with\\tcontrol\""),
            "policy not escaped: {body}"
        );
        // No raw quote survives inside the policy value: stripping every
        // escaped sequence first must leave only the structural quotes.
        let stripped = body.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(
            stripped.matches('"').count() % 2,
            0,
            "unbalanced quotes, body is not valid JSON: {body}"
        );
        assert!(body.contains("\"states\":{\"healthy\":0"));
        assert!(body.ends_with("\"watchers\":[]}"));
    }

    #[test]
    fn watchlist_json_renders_counts_and_items() {
        let mut snap = WatchSnapshot {
            watchlist: 2,
            pending: 5,
            tagged_now: 1,
            ..WatchSnapshot::default()
        };
        snap.states.healthy = 1;
        snap.states.tagged = 1;
        let items = vec!["{\"url\":\"http://a.example/\"}".to_string()];
        let body = watchlist_json(&snap, &items);
        assert!(body.starts_with("{\"size\":2,\"pending\":5,\"tagged\":1,"));
        assert!(body.contains("\"tagged\":1},\"watchers\":[{\"url\":\"http://a.example/\"}]}"));
    }
}
