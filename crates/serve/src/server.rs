//! The HTTP server: acceptor thread, crossbeam-channel worker pool, and
//! admission control.
//!
//! Accepted connections are `try_send`-dispatched into a **bounded** channel.
//! Workers pull from it; when every worker is busy and the queue is full the
//! acceptor answers `503 Service Unavailable` with `Retry-After` *itself* and
//! closes the socket — the one response cheap enough to serve inline. That is
//! the whole degradation story: bounded queue, bounded workers, explicit
//! back-pressure to the client instead of unbounded memory growth.
//!
//! Endpoints:
//!
//! | route            | method | behaviour                                          |
//! |------------------|--------|----------------------------------------------------|
//! | `/check?url=U`   | GET    | audit one link; JSON verdict + rescue              |
//! | `/batch`         | POST   | newline-delimited URLs (bounded); JSON array       |
//! | `/metrics`       | GET    | Prometheus text                                    |
//! | `/healthz`       | GET    | `ok`                                               |

use crate::metrics::ServeMetrics;
use crate::service::AuditService;
use crate::wire::{query_param, read_request, HttpRequest, HttpResponse, WireError};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use permadead_net::{Duration, SimTime};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Server shape: listener address and pool/queue/batch bounds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1; `0` picks an ephemeral port.
    pub port: u16,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before admission
    /// control starts refusing with 503.
    pub queue_cap: usize,
    /// Maximum URLs accepted in one `POST /batch`.
    pub max_batch: usize,
    /// Seconds advertised in `Retry-After` on an admission refusal.
    pub retry_after_secs: u32,
    /// Enable `/debug/sleep` (load tests exercise admission control with it).
    pub debug_endpoints: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 4,
            queue_cap: 64,
            max_batch: 256,
            retry_after_secs: 1,
            debug_endpoints: false,
        }
    }
}

/// Everything workers share.
struct Inner {
    service: AuditService,
    metrics: ServeMetrics,
    config: ServerConfig,
    started: Instant,
    shutdown: AtomicBool,
    /// A non-consuming view of the pending queue, for the depth gauge only
    /// (never `recv`d, so no connection is ever stolen from the workers).
    queue_probe: Receiver<TcpStream>,
}

impl Inner {
    /// The serving clock for cache TTLs: study time plus wall-clock elapsed,
    /// mapped 1:1 (one real second = one simulated second). Analyses stay
    /// pinned at study time; only cache expiry advances.
    fn now_sim(&self) -> SimTime {
        self.service.study_time() + Duration::seconds(self.started.elapsed().as_secs() as i64)
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    pub fn service(&self) -> &AuditService {
        &self.inner.service
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // unblock the acceptor's blocking accept() with one throwaway
        // connection; it sees the flag and exits, dropping the sender
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind, spawn the pool, and return immediately.
pub fn start(service: AuditService, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let addr = listener.local_addr()?;
    let (tx, rx) = bounded::<TcpStream>(config.queue_cap.max(1));
    let inner = Arc::new(Inner {
        service,
        metrics: ServeMetrics::new(),
        config: config.clone(),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        queue_probe: rx.clone(),
    });
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = rx.clone();
            let inner = inner.clone();
            std::thread::spawn(move || {
                for stream in rx.iter() {
                    // The pool is fixed-size: a panicking handler must not
                    // kill the worker, or the pool silently shrinks until no
                    // thread is left to answer queued connections.
                    let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(&inner, stream);
                    }));
                    if handled.is_err() {
                        inner.metrics.worker_panics_total.incr();
                    }
                }
            })
        })
        .collect();
    drop(rx);

    let acceptor = {
        let inner = inner.clone();
        std::thread::spawn(move || accept_loop(listener, tx, &inner))
    };

    Ok(ServerHandle {
        addr,
        inner,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, inner: &Inner) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break; // tx drops here; workers drain the queue and exit
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                inner.metrics.rejected_total.incr();
                inner.metrics.count_status(503);
                // Best-effort refusal: a rejected client that never reads
                // must not stall the acceptor on a full socket buffer.
                let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(250)));
                let resp = HttpResponse::error(503, "server at capacity, retry later")
                    .with_header("Retry-After", retry_after_secs(inner).to_string());
                let _ = resp.write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Seconds a refused client should wait before retrying, scaled by how much
/// work is already queued ahead of it. The configured `retry_after_secs` used
/// to be advertised verbatim — so every client refused during a burst came
/// back after the same fixed delay into a queue that had not drained, got
/// refused again, and synchronized into a retry stampede. Scaling by queue
/// occupancy spreads the herd: the fuller the queue at refusal time, the
/// longer the advertised wait, capped at a minute.
fn retry_after_secs(inner: &Inner) -> u32 {
    let base = inner.config.retry_after_secs.max(1);
    let occupied = inner.queue_probe.len() as u32;
    base.saturating_mul(1 + occupied).min(60)
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    let started = Instant::now();
    let request = match read_request(&mut stream) {
        Ok(Ok(req)) => req,
        Ok(Err(WireError::Closed)) => return, // shutdown poke / port scan
        Ok(Err(WireError::TooLarge)) => {
            respond(inner, &mut stream, "other", HttpResponse::error(413, "request too large"));
            return;
        }
        Ok(Err(WireError::BadRequest)) => {
            respond(inner, &mut stream, "other", HttpResponse::error(400, "malformed request"));
            return;
        }
        Err(_) => return, // socket error mid-read; nothing to answer
    };

    inner.metrics.inflight.fetch_add(1, Ordering::Relaxed);
    // decrement via a drop guard so a panicking handler can't leak the gauge
    struct InflightGuard<'a>(&'a ServeMetrics);
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            self.0.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _inflight = InflightGuard(&inner.metrics);
    let (route, response) = route(inner, &request);
    respond(inner, &mut stream, route, response);
    inner.metrics.observe_latency(started.elapsed().as_secs_f64());
}

fn respond(inner: &Inner, stream: &mut TcpStream, route: &str, response: HttpResponse) {
    inner.metrics.count_route(route);
    inner.metrics.count_status(response.status);
    let _ = response.write_to(stream);
}

fn route(inner: &Inner, req: &HttpRequest) -> (&'static str, HttpResponse) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", HttpResponse::text(200, "ok\n")),
        ("GET", "/metrics") => ("metrics", handle_metrics(inner)),
        ("GET", "/check") => ("check", handle_check(inner, req)),
        ("POST", "/batch") => ("batch", handle_batch(inner, req)),
        ("GET", "/debug/sleep") if inner.config.debug_endpoints => {
            let ms: u64 = query_param(req.query.as_deref(), "ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100);
            std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
            ("other", HttpResponse::text(200, "slept\n"))
        }
        ("GET", _) => ("other", HttpResponse::error(404, "no such endpoint")),
        (_, "/check" | "/batch" | "/metrics" | "/healthz") => {
            ("other", HttpResponse::error(405, "method not allowed"))
        }
        _ => ("other", HttpResponse::error(404, "no such endpoint")),
    }
}

fn handle_metrics(inner: &Inner) -> HttpResponse {
    let text = inner.metrics.render_prometheus(
        &inner.service.cache_stats(),
        &inner.service.net_snapshot(),
        inner.queue_probe.len(),
        &inner.service.origin_budget_snapshot(),
    );
    HttpResponse::metrics(text)
}

fn handle_check(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let Some(url) = query_param(req.query.as_deref(), "url") else {
        return HttpResponse::error(400, "missing url parameter");
    };
    match inner.service.check(&url, inner.now_sim()) {
        Ok((outcome, stats)) => {
            if let Some(stats) = stats {
                inner.metrics.merge_stage_stats(&stats);
            }
            HttpResponse::json(200, outcome.body)
        }
        Err(msg) => HttpResponse::error(400, &msg),
    }
}

fn handle_batch(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let urls: Vec<&str> = req
        .body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if urls.is_empty() {
        return HttpResponse::error(400, "empty batch");
    }
    if urls.len() > inner.config.max_batch {
        return HttpResponse::error(
            413,
            &format!("batch of {} exceeds limit {}", urls.len(), inner.config.max_batch),
        );
    }
    let now = inner.now_sim();
    let mut items = Vec::with_capacity(urls.len());
    for url in urls {
        match inner.service.check(url, now) {
            Ok((outcome, stats)) => {
                if let Some(stats) = stats {
                    inner.metrics.merge_stage_stats(&stats);
                }
                items.push(outcome.body);
            }
            Err(msg) => items.push(
                crate::json::Object::new()
                    .str("url", url)
                    .str("error", &msg)
                    .render(),
            ),
        }
    }
    HttpResponse::json(200, format!("{{\"results\":[{}]}}", items.join(",")))
}
