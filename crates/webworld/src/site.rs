//! Sites: a host (or a few), a bag of pages, policies, and a lifecycle.
//!
//! The site is where the paper's misleading behaviours live:
//!
//! - [`UnknownPathPolicy`] decides what a request for a non-existent path
//!   gets. `NotFound` is the honest answer; `Soft404` serves a 200 template
//!   (the §3 soft-404s); `RedirectHome`/`RedirectLogin` produce the
//!   *erroneous redirections* that make IABot distrust every archived 3xx
//!   copy (§4.2).
//! - [`SiteLifecycle`] describes abandonment and parking. A parked site
//!   serves a sale lander with status 200 for every path — the znaci.net
//!   example.

use crate::page::{Page, PageId, PathView};
use permadead_net::fault::FaultProfile;
use permadead_net::{Response, SimTime, StatusCode};
use permadead_text::{
    login_page_body, parked_domain_body, soft404_body, ContentGen,
};
use permadead_url::Url;
use std::collections::HashMap;

/// Global site identifier (also the DNS origin id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u64);

/// What a site serves for a path it doesn't recognize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownPathPolicy {
    /// Honest 404.
    NotFound,
    /// Rare honest variant: 410 Gone.
    Gone,
    /// 200 with a branded "not found" template — a soft-404.
    Soft404,
    /// 302 to the site root — the "old URL for a news article might redirect
    /// to the news site's homepage" case from the paper's introduction.
    RedirectHome,
    /// 302 to the login page.
    RedirectLogin,
}

/// Site-level lifecycle. DNS-level death (lapse, re-registration) is modeled
/// in the DNS timelines; this covers behaviour while the host still resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteLifecycle {
    /// Before this, the site doesn't exist (requests shouldn't reach it —
    /// DNS won't resolve — but we answer 503 defensively).
    pub founded: SimTime,
    /// From this time on, every path serves the parked lander (the domain
    /// was re-registered by a parker).
    pub parked_from: Option<SimTime>,
}

impl SiteLifecycle {
    pub fn active_from(founded: SimTime) -> Self {
        SiteLifecycle {
            founded,
            parked_from: None,
        }
    }

    pub fn parked_at(mut self, t: SimTime) -> Self {
        self.parked_from = Some(t);
        self
    }

    pub fn is_parked(&self, t: SimTime) -> bool {
        self.parked_from.is_some_and(|p| t >= p)
    }
}

/// A web site.
#[derive(Debug, Clone)]
pub struct Site {
    pub id: SiteId,
    /// Primary hostname.
    pub host: String,
    pub lifecycle: SiteLifecycle,
    /// Unknown-path policy over time: `(from, policy)` pairs, time-ordered.
    /// Sites change their error handling across redesigns — a link tagged
    /// dead under an honest 404 era can answer a soft 200 today (§3).
    policies: Vec<(SimTime, UnknownPathPolicy)>,
    pub faults: FaultProfile,
    pages: Vec<Page>,
    /// Any path a page ever occupied → index into `pages`. Paths are unique
    /// per site by construction of the world generator.
    path_index: HashMap<String, usize>,
}

impl Site {
    pub fn new(
        id: SiteId,
        host: &str,
        lifecycle: SiteLifecycle,
        unknown_path: UnknownPathPolicy,
    ) -> Self {
        Site {
            id,
            host: host.to_ascii_lowercase(),
            lifecycle,
            policies: vec![(SimTime(i64::MIN / 2), unknown_path)],
            faults: FaultProfile::none(id.0),
            pages: Vec::new(),
            path_index: HashMap::new(),
        }
    }

    pub fn with_faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// Switch the unknown-path policy from `from` onward. Changes must be
    /// pushed in time order.
    pub fn change_policy(&mut self, from: SimTime, policy: UnknownPathPolicy) {
        let last = self.policies.last().expect("at least the initial policy");
        assert!(from >= last.0, "policy changes must be time-ordered");
        self.policies.push((from, policy));
    }

    /// The full policy history, time-ordered, *excluding* the initial policy
    /// (which [`Site::new`] installs at the dawn of time). For world
    /// serialization: a site round-trips via `Site::new(initial)` plus
    /// replaying these through [`Site::change_policy`].
    pub fn policy_changes(&self) -> &[(SimTime, UnknownPathPolicy)] {
        &self.policies[1..]
    }

    /// The initial unknown-path policy passed to [`Site::new`].
    pub fn initial_policy(&self) -> UnknownPathPolicy {
        self.policies[0].1
    }

    /// The unknown-path policy in effect at `t`.
    pub fn policy_at(&self, t: SimTime) -> UnknownPathPolicy {
        self.policies
            .iter()
            .rev()
            .find(|&&(from, _)| from <= t)
            .map(|&(_, p)| p)
            .expect("initial policy covers all time")
    }

    /// Add a page; re-indexes all of its (past and future) paths. Paths
    /// containing a query string are *additionally* indexed under a
    /// canonical (order-insensitive) form of their parameters: most real
    /// servers treat `?a=1&b=2` and `?b=2&a=1` identically, and §5.2's
    /// implications lean on exactly that.
    pub fn add_page(&mut self, page: Page) {
        let idx = self.pages.len();
        for path in page.all_paths() {
            let prev = self.path_index.insert(path.to_string(), idx);
            assert!(prev.is_none(), "duplicate path {path} on site {}", self.host);
            if let Some((base, query)) = path.split_once('?') {
                let canon = format!("{base}?[{}]", permadead_url::canonical_query(query));
                self.path_index.insert(canon, idx);
            }
        }
        self.pages.push(page);
    }

    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    pub fn page(&self, id: PageId) -> Option<&Page> {
        self.pages.iter().find(|p| p.id == id)
    }

    /// The URL of the page's current location at `t`.
    pub fn url_of(&self, page: &Page, t: SimTime) -> Url {
        Url::parse(&format!("http://{}{}", self.host, page.current_path(t)))
            .expect("site paths are valid")
    }

    /// Serve a request for `path` at time `t`. Faults are checked by the
    /// caller ([`crate::world::LiveWeb`]); this is the origin's own logic.
    pub fn serve(&self, path_and_query: &str, t: SimTime, content: &ContentGen) -> Response {
        if t < self.lifecycle.founded {
            return Response::status_only(StatusCode::SERVICE_UNAVAILABLE);
        }
        if self.lifecycle.is_parked(t) {
            return Response::ok(parked_domain_body(&self.host));
        }
        // login wall is always present
        if permadead_text::soft404::is_login_path(path_and_query) {
            return Response::ok(login_page_body(&self.host));
        }
        // root always serves a homepage
        let path_only = path_and_query.split(['?', '#']).next().unwrap_or("/");
        if path_only == "/" {
            return Response::ok(self.render_page_body("home", t, content));
        }
        let canon_key = path_and_query.split_once('?').map(|(base, query)| {
            format!("{base}?[{}]", permadead_url::canonical_query(query))
        });
        let resolved: Option<(&Page, String)> = if let Some(&idx) = self.path_index.get(path_and_query) {
            Some((&self.pages[idx], path_and_query.to_string()))
        } else if let Some(&idx) = self.path_index.get(path_only) {
            Some((&self.pages[idx], path_only.to_string()))
        } else if let Some(&idx) = canon_key.and_then(|k| self.path_index.get(&k)) {
            // parameter-order-insensitive hit: find the stored spelling
            let page = &self.pages[idx];
            page.all_paths()
                .into_iter()
                .find(|p| {
                    p.split_once('?').is_some_and(|(b, q)| {
                        path_and_query.split_once('?').is_some_and(|(rb, rq)| {
                            b == rb
                                && permadead_url::canonical_query(q)
                                    == permadead_url::canonical_query(rq)
                        })
                    })
                })
                .map(|p| (page, p.to_string()))
        } else {
            None
        };
        match resolved.and_then(|(p, key)| p.view_at(&key, t).map(|v| (p, v))) {
            Some((page, PathView::Live)) => {
                let nonce = t.as_unix() as u64;
                Response::ok(page_html(page, self.id, t, content, nonce))
            }
            Some((page, PathView::Redirects { to_path })) => {
                let to = Url::parse(&format!("http://{}{}", self.host, to_path))
                    .expect("valid redirect target");
                let _ = page;
                Response::redirect(StatusCode::MOVED_PERMANENTLY, to)
            }
            Some((_, PathView::Stale)) | Some((_, PathView::Deleted)) | None => {
                self.serve_unknown(path_and_query, t)
            }
        }
    }

    fn serve_unknown(&self, _path: &str, t: SimTime) -> Response {
        match self.policy_at(t) {
            UnknownPathPolicy::NotFound => Response::not_found(),
            UnknownPathPolicy::Gone => Response::status_only(StatusCode::GONE),
            UnknownPathPolicy::Soft404 => Response::ok(soft404_body(&self.host)),
            UnknownPathPolicy::RedirectHome => Response::redirect(
                StatusCode::FOUND,
                Url::parse(&format!("http://{}/", self.host)).unwrap(),
            ),
            UnknownPathPolicy::RedirectLogin => Response::redirect(
                StatusCode::FOUND,
                Url::parse(&format!("http://{}/login", self.host)).unwrap(),
            ),
        }
    }

    fn render_page_body(&self, key: &str, t: SimTime, content: &ContentGen) -> String {
        let full_key = format!("site{}:{key}", self.id.0);
        let title = content.title(&full_key);
        let body = content.body(&full_key, 14, t.as_unix() as u64);
        permadead_text::render_page(&title, &[&body])
    }
}

fn page_html(page: &Page, site: SiteId, t: SimTime, content: &ContentGen, nonce: u64) -> String {
    let key = page.content_key(site.0);
    let title = content.title(&key);
    let body = content.body(&key, 18, nonce ^ t.as_unix() as u64);
    permadead_text::render_page(&title, &[&body])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageEvent;
    use permadead_text::shingle_similarity;

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 1, 1)
    }

    fn gen() -> ContentGen {
        ContentGen::new(77)
    }

    fn site(policy: UnknownPathPolicy) -> Site {
        let mut s = Site::new(
            SiteId(5),
            "news.example.org",
            SiteLifecycle::active_from(t(2005)),
            policy,
        );
        let mut p = Page::new(PageId(1), t(2008), "/stories/a.html");
        p.push_event(t(2015), PageEvent::Moved { to_path: "/archive/a.html".into() });
        s.add_page(p);
        s.add_page(Page::new(PageId(2), t(2009), "/stories/b.html"));
        s
    }

    #[test]
    fn live_page_serves_200_content() {
        let s = site(UnknownPathPolicy::NotFound);
        let r = s.serve("/stories/b.html", t(2012), &gen());
        assert_eq!(r.status, StatusCode::OK);
        assert!(r.body.contains("<html>"));
    }

    #[test]
    fn moved_page_404s_at_old_path() {
        let s = site(UnknownPathPolicy::NotFound);
        assert_eq!(s.serve("/stories/a.html", t(2016), &gen()).status, StatusCode::NOT_FOUND);
        assert_eq!(s.serve("/archive/a.html", t(2016), &gen()).status, StatusCode::OK);
    }

    #[test]
    fn content_survives_the_move() {
        let s = site(UnknownPathPolicy::NotFound);
        let before = s.serve("/stories/a.html", t(2014), &gen()).body;
        let after = s.serve("/archive/a.html", t(2016), &gen()).body;
        assert!(
            shingle_similarity(&before, &after, 5) > 0.95,
            "same page should keep its prose across the move"
        );
    }

    #[test]
    fn soft404_policy_serves_200_template() {
        let s = site(UnknownPathPolicy::Soft404);
        let r = s.serve("/no/such/path", t(2012), &gen());
        assert_eq!(r.status, StatusCode::OK);
        assert!(r.body.contains("could not find"));
        // crucial property: identical for different paths
        let r2 = s.serve("/different/path", t(2012), &gen());
        assert_eq!(r.body, r2.body);
    }

    #[test]
    fn redirect_home_policy() {
        let s = site(UnknownPathPolicy::RedirectHome);
        let r = s.serve("/no/such/path", t(2012), &gen());
        assert_eq!(r.status, StatusCode::FOUND);
        assert_eq!(r.location.unwrap().to_string(), "http://news.example.org/");
    }

    #[test]
    fn redirect_login_policy_and_login_wall() {
        let s = site(UnknownPathPolicy::RedirectLogin);
        let r = s.serve("/private/thing", t(2012), &gen());
        assert_eq!(r.status, StatusCode::FOUND);
        let login = r.location.unwrap();
        assert_eq!(login.path(), "/login");
        let wall = s.serve("/login", t(2012), &gen());
        assert_eq!(wall.status, StatusCode::OK);
        assert!(wall.body.contains("Sign in"));
    }

    #[test]
    fn parked_site_serves_lander_everywhere() {
        let mut s = site(UnknownPathPolicy::NotFound);
        s.lifecycle = s.lifecycle.parked_at(t(2018));
        let r = s.serve("/stories/b.html", t(2019), &gen());
        assert_eq!(r.status, StatusCode::OK);
        assert!(r.body.contains("for sale"));
        // before parking it worked normally
        assert!(s.serve("/stories/b.html", t(2017), &gen()).body.contains("<html>"));
        assert!(!s.serve("/stories/b.html", t(2017), &gen()).body.contains("for sale"));
    }

    #[test]
    fn root_serves_homepage() {
        let s = site(UnknownPathPolicy::NotFound);
        assert_eq!(s.serve("/", t(2012), &gen()).status, StatusCode::OK);
    }

    #[test]
    fn gone_policy() {
        let s = site(UnknownPathPolicy::Gone);
        assert_eq!(s.serve("/nope", t(2012), &gen()).status, StatusCode::GONE);
    }

    #[test]
    fn before_founding_503() {
        let s = site(UnknownPathPolicy::NotFound);
        assert_eq!(s.serve("/stories/b.html", t(2001), &gen()).status, StatusCode::SERVICE_UNAVAILABLE);
    }

    #[test]
    fn redirect_after_move_serves_301() {
        let mut s = Site::new(
            SiteId(6),
            "fishman.example",
            SiteLifecycle::active_from(t(2005)),
            UnknownPathPolicy::NotFound,
        );
        let mut p = Page::new(PageId(1), t(2008), "/artists/steve");
        p.push_event(t(2016), PageEvent::Moved { to_path: "/portfolio/steve".into() });
        p.push_event(t(2020), PageEvent::RedirectAdded);
        s.add_page(p);
        // 2017: moved, no redirect yet → 404 (IABot would mark it dead)
        assert_eq!(s.serve("/artists/steve", t(2017), &gen()).status, StatusCode::NOT_FOUND);
        // 2022: redirect exists → 301 to the new home (the revival)
        let r = s.serve("/artists/steve", t(2022), &gen());
        assert_eq!(r.status, StatusCode::MOVED_PERMANENTLY);
        assert_eq!(r.location.unwrap().path(), "/portfolio/steve");
    }

    #[test]
    #[should_panic(expected = "duplicate path")]
    fn duplicate_paths_rejected() {
        let mut s = site(UnknownPathPolicy::NotFound);
        s.add_page(Page::new(PageId(9), t(2010), "/stories/b.html"));
    }

    #[test]
    fn policy_change_over_time() {
        // honest 404 era, then a redesign serving soft-404s — the §3
        // "tagged dead then 200 today" mechanism
        let mut s = site(UnknownPathPolicy::NotFound);
        s.change_policy(t(2019), UnknownPathPolicy::Soft404);
        assert_eq!(s.serve("/gone", t(2016), &gen()).status, StatusCode::NOT_FOUND);
        let late = s.serve("/gone", t(2020), &gen());
        assert_eq!(late.status, StatusCode::OK);
        assert!(late.body.contains("could not find"));
        assert_eq!(s.policy_at(t(2016)), UnknownPathPolicy::NotFound);
        assert_eq!(s.policy_at(t(2020)), UnknownPathPolicy::Soft404);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_policy_change_panics() {
        let mut s = site(UnknownPathPolicy::NotFound);
        s.change_policy(t(2019), UnknownPathPolicy::Soft404);
        s.change_policy(t(2018), UnknownPathPolicy::NotFound);
    }

    #[test]
    fn query_param_order_is_insensitive() {
        let mut s = Site::new(
            SiteId(9),
            "dyn.example",
            SiteLifecycle::active_from(t(2005)),
            UnknownPathPolicy::NotFound,
        );
        s.add_page(Page::new(PageId(1), t(2006), "/cgi/story.asp?id=7&view=full"));
        // canonical spelling answers
        assert_eq!(
            s.serve("/cgi/story.asp?id=7&view=full", t(2010), &gen()).status,
            StatusCode::OK
        );
        // permuted parameters answer the same page
        let permuted = s.serve("/cgi/story.asp?view=full&id=7", t(2010), &gen());
        assert_eq!(permuted.status, StatusCode::OK);
        // a changed value does not
        assert_eq!(
            s.serve("/cgi/story.asp?view=full&id=8", t(2010), &gen()).status,
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn url_of_tracks_moves() {
        let s = site(UnknownPathPolicy::NotFound);
        let p = s.page(PageId(1)).unwrap();
        assert_eq!(s.url_of(p, t(2012)).to_string(), "http://news.example.org/stories/a.html");
        assert_eq!(s.url_of(p, t(2016)).to_string(), "http://news.example.org/archive/a.html");
    }
}
