//! Site popularity ranking.
//!
//! Figure 3(b) plots the Alexa rank of every sampled URL's site; the
//! distribution spans the full 1..1M range with a bias toward popular sites.
//! Alexa is gone, so the world generator assigns ranks itself:
//! sites get distinct ranks in `1..=universe`, and page counts correlate with
//! rank through a Zipf-like law (rank 1 hosts far more pages than rank 10⁵),
//! which in turn reproduces Figure 3(a)'s heavy tail of URLs-per-domain.

use std::collections::HashMap;

/// Maps hosts to ranks. Ranks are unique, 1-based, lower = more popular.
#[derive(Debug, Clone, Default)]
pub struct RankTable {
    by_host: HashMap<String, u32>,
    /// The size of the ranked universe (Alexa's was 1M); unranked hosts
    /// report this value + 1.
    pub universe: u32,
}

impl RankTable {
    pub fn new(universe: u32) -> Self {
        RankTable {
            by_host: HashMap::new(),
            universe,
        }
    }

    pub fn insert(&mut self, host: &str, rank: u32) {
        assert!(rank >= 1, "ranks are 1-based");
        self.by_host.insert(host.to_ascii_lowercase(), rank);
    }

    /// The host's rank, or `universe + 1` for unranked hosts (the paper
    /// plots unranked sites at the tail).
    pub fn rank(&self, host: &str) -> u32 {
        self.by_host
            .get(&host.to_ascii_lowercase())
            .copied()
            .unwrap_or(self.universe + 1)
    }

    pub fn is_ranked(&self, host: &str) -> bool {
        self.by_host.contains_key(&host.to_ascii_lowercase())
    }

    pub fn len(&self) -> usize {
        self.by_host.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_host.is_empty()
    }

    /// Every `(host, rank)` pair, in arbitrary order (serializers sort).
    pub fn entries(&self) -> impl Iterator<Item = (&String, u32)> {
        self.by_host.iter().map(|(h, &r)| (h, r))
    }
}

/// Expected number of pages for a site of the given rank under a Zipf-like
/// law: `base * (rank)^(-alpha)`, clamped to `[min_pages, max_pages]`.
///
/// With `alpha ≈ 0.55`, `base ≈ 4000`: rank 1 → 4000 pages, rank 1000 → ~90,
/// rank 500k → ~3. Matches the paper's observation that >70% of domains
/// contribute one URL while a few contribute hundreds.
pub fn zipf_page_count(rank: u32, base: f64, alpha: f64, min_pages: u32, max_pages: u32) -> u32 {
    let raw = base * f64::from(rank.max(1)).powf(-alpha);
    (raw.round() as u32).clamp(min_pages, max_pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_lookup() {
        let mut t = RankTable::new(1_000_000);
        t.insert("Big.example", 10);
        assert_eq!(t.rank("big.example"), 10);
        assert_eq!(t.rank("BIG.EXAMPLE"), 10);
        assert!(t.is_ranked("big.example"));
    }

    #[test]
    fn unranked_reports_tail() {
        let t = RankTable::new(1_000_000);
        assert_eq!(t.rank("nobody.example"), 1_000_001);
        assert!(!t.is_ranked("nobody.example"));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rank_rejected() {
        RankTable::new(100).insert("x", 0);
    }

    #[test]
    fn zipf_decreasing_in_rank() {
        let counts: Vec<u32> = [1u32, 10, 100, 1_000, 100_000]
            .iter()
            .map(|&r| zipf_page_count(r, 4000.0, 0.55, 1, 100_000))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), zipf_page_count(100_000, 4000.0, 0.55, 1, 100_000));
    }

    #[test]
    fn zipf_respects_clamps() {
        assert_eq!(zipf_page_count(1, 1e9, 0.1, 1, 500), 500);
        assert_eq!(zipf_page_count(1_000_000, 10.0, 2.0, 1, 500), 1);
    }

    #[test]
    fn zipf_head_vs_tail_matches_figure3a_shape() {
        // head sites host hundreds of pages; tail sites host a handful
        assert!(zipf_page_count(1, 4000.0, 0.55, 1, 100_000) > 1000);
        assert!(zipf_page_count(500_000, 4000.0, 0.55, 1, 100_000) <= 5);
    }
}
