//! The simulated live web.
//!
//! A [`LiveWeb`] is a set of [`Site`]s behind a simulated DNS, serving HTTP
//! responses **as a function of time**. Every link-rot phenomenon the paper
//! measures exists here by construction:
//!
//! - pages that 404 after a site restructuring ([`page::PageEvent::Moved`]);
//! - pages whose old URL *later* gains a redirect — the §3 "revived" links
//!   ([`page::PageEvent::RedirectAdded`]);
//! - sites that serve branded 200 "not found" templates — soft-404s
//!   ([`site::UnknownPathPolicy::Soft404`]);
//! - sites that redirect unknown paths to the homepage or a login wall —
//!   the erroneous redirects that make IABot distrust 3xx archived copies
//!   (§4.2);
//! - whole domains that lapse (DNS NXDOMAIN) or get re-registered by domain
//!   parkers serving sale landers;
//! - vantage-dependent geo-blocking, transient 503s, and connect timeouts
//!   ([`permadead_net::fault`]).
//!
//! The world is immutable after generation; all dynamism comes from
//! timestamped lifecycle events interpreted at request time. That makes a
//! fetch a pure function `(world, url, t) → response` — the property every
//! reproduction figure relies on.

pub mod page;
pub mod rank;
pub mod site;
pub mod world;

pub use page::{Page, PageEvent, PageId};
pub use rank::RankTable;
pub use site::{Site, SiteId, SiteLifecycle, UnknownPathPolicy};
pub use world::LiveWeb;
