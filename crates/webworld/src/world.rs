//! The assembled live web: DNS + sites + faults, implementing
//! [`permadead_net::Network`].

use crate::rank::RankTable;
use crate::site::{Site, SiteId};
use permadead_net::fault::Fault;
use permadead_net::{FetchError, Request, Response, SimTime, StaticDns, StatusCode};
use permadead_text::ContentGen;
use permadead_url::Url;
use std::collections::HashMap;

/// The whole simulated web.
#[derive(Debug)]
pub struct LiveWeb {
    sites: HashMap<SiteId, Site>,
    pub dns: StaticDns,
    pub ranks: RankTable,
    content: ContentGen,
    /// Request accounting (the measurement-cost side of every experiment).
    pub metrics: permadead_net::NetMetrics,
}

impl LiveWeb {
    pub fn new(seed: u64) -> Self {
        LiveWeb {
            sites: HashMap::new(),
            dns: StaticDns::new(),
            ranks: RankTable::new(1_000_000),
            content: ContentGen::new(seed),
            metrics: permadead_net::NetMetrics::new(),
        }
    }

    /// Add a site whose DNS is active for all time. Generators with richer
    /// DNS lifecycles insert their own timelines via [`LiveWeb::dns`].
    pub fn add_site(&mut self, site: Site) {
        self.dns.insert_active(&site.host, site.id.0);
        self.sites.insert(site.id, site);
    }

    /// Add a site *without* touching DNS (caller installs the timeline).
    pub fn add_site_raw(&mut self, site: Site) {
        self.sites.insert(site.id, site);
    }

    pub fn site(&self, id: SiteId) -> Option<&Site> {
        self.sites.get(&id)
    }

    pub fn site_mut(&mut self, id: SiteId) -> Option<&mut Site> {
        self.sites.get_mut(&id)
    }

    pub fn site_by_host(&self, host: &str, t: SimTime) -> Option<&Site> {
        let rec = self.dns.resolve(host, t).ok()?;
        self.sites.get(&SiteId(rec.origin_id))
    }

    pub fn sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.values()
    }

    pub fn content(&self) -> &ContentGen {
        &self.content
    }

    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Structural invariant check, for world-generation tests: every page
    /// path forms a valid URL on its host, every site's host is lowercase,
    /// and page IDs are unique per site. Returns the list of violations
    /// (empty = consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for site in self.sites.values() {
            if site.host != site.host.to_ascii_lowercase() {
                problems.push(format!("host not lowercase: {}", site.host));
            }
            let mut ids = std::collections::HashSet::new();
            for page in site.pages() {
                if !ids.insert(page.id) {
                    problems.push(format!("duplicate page id {:?} on {}", page.id, site.host));
                }
                for path in page.all_paths() {
                    if Url::parse(&format!("http://{}{}", site.host, path)).is_err() {
                        problems.push(format!("unparseable page URL: {}{}", site.host, path));
                    }
                }
            }
        }
        problems
    }
}

impl permadead_net::Network for LiveWeb {
    fn request(&self, req: &Request) -> Result<Response, FetchError> {
        let outcome = self.request_inner(req);
        self.metrics.record(&outcome);
        outcome
    }
}

impl LiveWeb {
    fn request_inner(&self, req: &Request) -> Result<Response, FetchError> {
        // 1. DNS
        let record = self
            .dns
            .resolve(req.url.host(), req.time)
            .map_err(FetchError::Dns)?;
        // 2. the origin the record points at (a record for a vanished origin
        //    is a dangling zone — connection will time out)
        let Some(site) = self.sites.get(&SiteId(record.origin_id)) else {
            return Err(FetchError::ConnectTimeout);
        };
        // 3. faults (geo-blocking, transient outages) fire before app logic
        if let Some(fault) = site
            .faults
            .check_attempt(&req.url.to_string(), req.vantage, req.time, req.attempt)
        {
            // 429/503 carry the origin's honest Retry-After (how long until
            // the budget resets / the outage window ends), which the retry
            // policies honor end-to-end
            let with_hint = |resp: Response| match site.faults.retry_after_secs(fault, req.time) {
                Some(secs) => resp.with_header("Retry-After", secs.to_string()),
                None => resp,
            };
            return match fault {
                Fault::ConnectTimeout => Err(FetchError::ConnectTimeout),
                Fault::Unavailable => {
                    Ok(with_hint(Response::status_only(StatusCode::SERVICE_UNAVAILABLE)))
                }
                Fault::GeoBlocked => Ok(Response::status_only(StatusCode::FORBIDDEN)),
                Fault::RateLimited => {
                    Ok(with_hint(Response::status_only(StatusCode::TOO_MANY_REQUESTS)))
                }
            };
        }
        // 4. the origin answers
        Ok(site.serve(&req.url.path_and_query(), req.time, &self.content))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageEvent, PageId};
    use crate::site::{SiteLifecycle, UnknownPathPolicy};
    use permadead_net::dns::{HostState, HostTimeline};
    use permadead_net::fault::FaultProfile;
    use permadead_net::http::Vantage;
    use permadead_net::{Client, LiveStatus};

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 6, 15)
    }

    fn build_world() -> LiveWeb {
        let mut web = LiveWeb::new(1234);

        // a healthy site with a page that moves and later gets a redirect
        let mut good = Site::new(
            SiteId(1),
            "alive.example.org",
            SiteLifecycle::active_from(t(2004)),
            UnknownPathPolicy::NotFound,
        );
        let mut p = Page::new(PageId(1), t(2008), "/artists/steve");
        p.push_event(t(2016), PageEvent::Moved { to_path: "/portfolio/steve".into() });
        p.push_event(t(2020), PageEvent::RedirectAdded);
        good.add_page(p);
        good.add_page(Page::new(PageId(2), t(2009), "/about.html"));
        web.add_site(good);

        // a site whose domain lapses in 2018
        let mut dying = Site::new(
            SiteId(2),
            "dying.example.net",
            SiteLifecycle::active_from(t(2004)),
            UnknownPathPolicy::NotFound,
        );
        dying.add_page(Page::new(PageId(1), t(2007), "/story.html"));
        let mut tl = HostTimeline::new();
        tl.push(t(2004), HostState::Active { origin_id: 2 });
        tl.push(t(2018), HostState::Lapsed);
        web.dns.insert("dying.example.net", tl);
        web.add_site_raw(dying);

        // a geo-blocking site
        let geo = Site::new(
            SiteId(3),
            "geo.example.com",
            SiteLifecycle::active_from(t(2004)),
            UnknownPathPolicy::NotFound,
        )
        .with_faults(FaultProfile::none(3).with_geo_block(&[Vantage::UsEducation]));
        web.add_site(geo);

        web
    }

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn end_to_end_revival() {
        let web = build_world();
        let client = Client::new();
        let url = u("http://alive.example.org/artists/steve");
        // live originally
        assert_eq!(client.get(&web, &url, t(2012)).live_status(), LiveStatus::Ok);
        // broken after the move (this is when IABot would mark it)
        assert_eq!(client.get(&web, &url, t(2018)).live_status(), LiveStatus::NotFound);
        // revived once the redirect appears (this is the paper's 3%)
        let rec = client.get(&web, &url, t(2022));
        assert_eq!(rec.live_status(), LiveStatus::Ok);
        assert!(rec.was_redirected());
        assert_eq!(rec.final_url().unwrap().path(), "/portfolio/steve");
    }

    #[test]
    fn lapsed_domain_is_dns_failure() {
        let web = build_world();
        let client = Client::new();
        let url = u("http://dying.example.net/story.html");
        assert_eq!(client.get(&web, &url, t(2015)).live_status(), LiveStatus::Ok);
        assert_eq!(
            client.get(&web, &url, t(2020)).live_status(),
            LiveStatus::DnsFailure
        );
    }

    #[test]
    fn geo_block_depends_on_vantage() {
        let web = build_world();
        let url = u("http://geo.example.com/");
        let us = Client::new().with_vantage(Vantage::UsEducation);
        let eu = Client::new().with_vantage(Vantage::Europe);
        assert_eq!(us.get(&web, &url, t(2022)).live_status(), LiveStatus::Other);
        assert_eq!(eu.get(&web, &url, t(2022)).live_status(), LiveStatus::Ok);
    }

    #[test]
    fn fault_responses_carry_retry_after() {
        let mut web = build_world();
        web.site_mut(SiteId(1)).unwrap().faults = FaultProfile::none(5).with_daily_rate_limit(0);
        let rec = Client::new().get(&web, &u("http://alive.example.org/about.html"), t(2022));
        assert_eq!(rec.outcome, Ok(permadead_net::StatusCode::TOO_MANY_REQUESTS));
        // t(2022) is midnight UTC: a full day to the reset, capped at 30s
        assert_eq!(
            rec.retry_after_ms,
            Some(permadead_net::fault::MAX_RETRY_AFTER_SECS * 1_000)
        );
    }

    #[test]
    fn unknown_host_dns_failure() {
        let web = build_world();
        let rec = Client::new().get(&web, &u("http://never-registered.example/x"), t(2022));
        assert_eq!(rec.live_status(), LiveStatus::DnsFailure);
    }

    #[test]
    fn site_by_host_respects_time() {
        let web = build_world();
        assert!(web.site_by_host("dying.example.net", t(2015)).is_some());
        assert!(web.site_by_host("dying.example.net", t(2020)).is_none());
    }

    #[test]
    fn fetch_is_deterministic() {
        let web = build_world();
        let client = Client::new();
        let url = u("http://alive.example.org/about.html");
        let a = client.get(&web, &url, t(2019));
        let b = client.get(&web, &url, t(2019));
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.body, b.body);
    }
}
