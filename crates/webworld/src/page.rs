//! Pages and their lifecycles.
//!
//! A page is born at some path, and may later move (leaving its old URL
//! broken), gain a redirect from old to new (possibly much later — the §3
//! revival mechanism), or be deleted outright. The page's *content identity*
//! is stable across moves: the same prose is served from whichever path is
//! current, exactly like the paper's fishman.com example where the old and
//! new URL host the same artist page.

use permadead_net::SimTime;

/// Identifies a page within its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A timestamped lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum PageEvent {
    /// The page moves to a new path. The old path stops serving content
    /// (what it serves instead is the site's unknown-path policy) until a
    /// `RedirectAdded` event covers it.
    Moved { to_path: String },
    /// The site operator wires up a redirect from the page's previous path
    /// to its current one. Uses a 301.
    RedirectAdded,
    /// The page is removed; its path falls back to the unknown-path policy.
    Deleted,
}

/// A page: an initial path plus a time-ordered event list.
#[derive(Debug, Clone)]
pub struct Page {
    pub id: PageId,
    pub created: SimTime,
    pub initial_path: String,
    events: Vec<(SimTime, PageEvent)>,
}

/// What a page's state looks like from a given path at a given time.
#[derive(Debug, Clone, PartialEq)]
pub enum PathView {
    /// This path currently serves the page's content.
    Live,
    /// This path 301s to the page's current path.
    Redirects { to_path: String },
    /// The page once lived here but no longer does (and no redirect exists);
    /// the site's unknown-path policy applies.
    Stale,
    /// The page is deleted; unknown-path policy applies.
    Deleted,
}

impl Page {
    pub fn new(id: PageId, created: SimTime, initial_path: &str) -> Self {
        assert!(initial_path.starts_with('/'), "paths are absolute");
        Page {
            id,
            created,
            initial_path: initial_path.to_string(),
            events: Vec::new(),
        }
    }

    /// Append an event; events must be pushed in time order and must be
    /// consistent (no move after delete, redirect only after a move).
    pub fn push_event(&mut self, at: SimTime, event: PageEvent) {
        if let Some((last, prev)) = self.events.last() {
            assert!(at >= *last, "events must be time-ordered");
            assert!(
                !matches!(prev, PageEvent::Deleted),
                "no events after deletion"
            );
        }
        if matches!(event, PageEvent::RedirectAdded) {
            assert!(
                self.events
                    .iter()
                    .any(|(_, e)| matches!(e, PageEvent::Moved { .. })),
                "redirect requires a prior move"
            );
        }
        self.events.push((at, event));
    }

    /// The raw event list, time-ordered (for world serialization: a page
    /// round-trips by replaying these through [`Page::push_event`]).
    pub fn events(&self) -> &[(SimTime, PageEvent)] {
        &self.events
    }

    /// The path serving this page's content at `t` (regardless of deletion).
    pub fn current_path(&self, t: SimTime) -> &str {
        let mut path = self.initial_path.as_str();
        for (at, e) in &self.events {
            if *at > t {
                break;
            }
            if let PageEvent::Moved { to_path } = e {
                path = to_path;
            }
        }
        path
    }

    /// Is the page deleted at `t`?
    pub fn is_deleted(&self, t: SimTime) -> bool {
        self.events
            .iter()
            .any(|(at, e)| *at <= t && matches!(e, PageEvent::Deleted))
    }

    /// Does the page exist yet at `t`?
    pub fn exists(&self, t: SimTime) -> bool {
        self.created <= t
    }

    /// Every path this page has ever been reachable at (for building the
    /// site's path index).
    pub fn all_paths(&self) -> Vec<&str> {
        let mut v = vec![self.initial_path.as_str()];
        for (_, e) in &self.events {
            if let PageEvent::Moved { to_path } = e {
                v.push(to_path.as_str());
            }
        }
        v
    }

    /// How the page presents at `path` at time `t`. Returns `None` when
    /// `path` has never belonged to this page or the page doesn't exist yet.
    pub fn view_at(&self, path: &str, t: SimTime) -> Option<PathView> {
        if !self.exists(t) || !self.all_paths().contains(&path) {
            return None;
        }
        if self.is_deleted(t) {
            return Some(PathView::Deleted);
        }
        let current = self.current_path(t);
        if current == path {
            return Some(PathView::Live);
        }
        // `path` is an old location. Does a redirect cover it? A redirect
        // covers the path the page occupied just before the move that the
        // redirect follows. We replay history to find out.
        let mut prev_path = self.initial_path.as_str();
        let mut redirected_paths: Vec<(&str, SimTime)> = Vec::new();
        let mut pending_old: Option<&str> = None;
        for (at, e) in &self.events {
            if *at > t {
                break;
            }
            match e {
                PageEvent::Moved { to_path } => {
                    pending_old = Some(prev_path);
                    prev_path = to_path;
                }
                PageEvent::RedirectAdded => {
                    if let Some(old) = pending_old.take() {
                        redirected_paths.push((old, *at));
                    }
                }
                PageEvent::Deleted => {}
            }
        }
        if redirected_paths.iter().any(|(p, _)| *p == path) {
            Some(PathView::Redirects {
                to_path: current.to_string(),
            })
        } else {
            Some(PathView::Stale)
        }
    }

    /// Stable key for content generation: pages keep their prose across
    /// moves.
    pub fn content_key(&self, site_id: u64) -> String {
        format!("site{}:page{}", site_id, self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_net::Duration;

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 1, 1)
    }

    fn page() -> Page {
        Page::new(PageId(1), t(2010), "/news/story.html")
    }

    #[test]
    fn fresh_page_is_live_at_its_path() {
        let p = page();
        assert_eq!(p.view_at("/news/story.html", t(2012)), Some(PathView::Live));
        assert_eq!(p.current_path(t(2012)), "/news/story.html");
        assert!(!p.is_deleted(t(2012)));
    }

    #[test]
    fn not_yet_created() {
        let p = page();
        assert_eq!(p.view_at("/news/story.html", t(2005)), None);
        assert!(!p.exists(t(2005)));
    }

    #[test]
    fn unknown_path_is_none() {
        let p = page();
        assert_eq!(p.view_at("/other", t(2012)), None);
    }

    #[test]
    fn move_leaves_old_path_stale() {
        let mut p = page();
        p.push_event(t(2015), PageEvent::Moved { to_path: "/archive/story.html".into() });
        // before the move
        assert_eq!(p.view_at("/news/story.html", t(2014)), Some(PathView::Live));
        // after the move: old path stale, new path live
        assert_eq!(p.view_at("/news/story.html", t(2016)), Some(PathView::Stale));
        assert_eq!(p.view_at("/archive/story.html", t(2016)), Some(PathView::Live));
        // new path did not exist before the move
        assert_eq!(p.view_at("/archive/story.html", t(2014)), Some(PathView::Stale));
    }

    #[test]
    fn late_redirect_revives_old_path() {
        // the §3 revival scenario: move in 2015, redirect added in 2021
        let mut p = page();
        p.push_event(t(2015), PageEvent::Moved { to_path: "/new/story.html".into() });
        p.push_event(t(2021), PageEvent::RedirectAdded);
        assert_eq!(p.view_at("/news/story.html", t(2018)), Some(PathView::Stale));
        assert_eq!(
            p.view_at("/news/story.html", t(2022)),
            Some(PathView::Redirects { to_path: "/new/story.html".into() })
        );
    }

    #[test]
    fn deleted_page() {
        let mut p = page();
        p.push_event(t(2017), PageEvent::Deleted);
        assert_eq!(p.view_at("/news/story.html", t(2016)), Some(PathView::Live));
        assert_eq!(p.view_at("/news/story.html", t(2018)), Some(PathView::Deleted));
        assert!(p.is_deleted(t(2018)));
    }

    #[test]
    fn double_move_with_redirect_chain_target_is_current() {
        let mut p = page();
        p.push_event(t(2012), PageEvent::Moved { to_path: "/v2/story".into() });
        p.push_event(t(2013), PageEvent::RedirectAdded);
        p.push_event(t(2016), PageEvent::Moved { to_path: "/v3/story".into() });
        // the 2013 redirect covered /news/story.html; after the second move
        // it points at the page's *current* path (site keeps it updated)
        assert_eq!(
            p.view_at("/news/story.html", t(2017)),
            Some(PathView::Redirects { to_path: "/v3/story".into() })
        );
        // /v2/story got no redirect of its own
        assert_eq!(p.view_at("/v2/story", t(2017)), Some(PathView::Stale));
    }

    #[test]
    fn all_paths_accumulates() {
        let mut p = page();
        p.push_event(t(2012), PageEvent::Moved { to_path: "/v2".into() });
        p.push_event(t(2016), PageEvent::Moved { to_path: "/v3".into() });
        assert_eq!(p.all_paths(), vec!["/news/story.html", "/v2", "/v3"]);
    }

    #[test]
    #[should_panic(expected = "redirect requires a prior move")]
    fn redirect_without_move_panics() {
        let mut p = page();
        p.push_event(t(2015), PageEvent::RedirectAdded);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_events_panic() {
        let mut p = page();
        p.push_event(t(2015), PageEvent::Moved { to_path: "/x".into() });
        p.push_event(t(2014), PageEvent::Deleted);
    }

    #[test]
    #[should_panic(expected = "no events after deletion")]
    fn events_after_delete_panic() {
        let mut p = page();
        p.push_event(t(2015), PageEvent::Deleted);
        p.push_event(t(2016), PageEvent::Moved { to_path: "/x".into() });
    }

    #[test]
    fn content_key_stable_across_moves() {
        let mut p = page();
        let before = p.content_key(9);
        p.push_event(t(2012), PageEvent::Moved { to_path: "/v2".into() });
        assert_eq!(p.content_key(9), before);
    }

    mod lifecycle_properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary-but-valid event scripts: moves, one optional redirect
        /// after a move, optional trailing delete.
        fn arb_script() -> impl Strategy<Value = Vec<(i64, PageEvent)>> {
            proptest::collection::vec((1i64..5000, 0u8..3), 0..5).prop_map(|raw| {
                let mut t_acc = 0i64;
                let mut moved_pending = false;
                let mut out = Vec::new();
                for (dt, kind) in raw {
                    t_acc += dt;
                    match kind {
                        0 => {
                            out.push((t_acc, PageEvent::Moved {
                                to_path: format!("/moved/{t_acc}"),
                            }));
                            moved_pending = true;
                        }
                        1 if moved_pending => {
                            out.push((t_acc, PageEvent::RedirectAdded));
                            moved_pending = false;
                        }
                        2 => {
                            out.push((t_acc, PageEvent::Deleted));
                            break;
                        }
                        _ => {}
                    }
                }
                out
            })
        }

        proptest! {
            #[test]
            fn views_are_total_and_consistent(script in arb_script(), probe_day in 0i64..6000) {
                let mut p = Page::new(PageId(1), SimTime(0), "/start");
                for (day, e) in &script {
                    p.push_event(SimTime(day * 86_400), e.clone());
                }
                let t = SimTime(probe_day * 86_400);
                // every historical path yields a view; exactly one path is
                // Live unless the page is deleted
                let mut live = 0;
                for path in p.all_paths() {
                    match p.view_at(path, t) {
                        Some(PathView::Live) => live += 1,
                        Some(_) => {}
                        None => prop_assert!(!p.exists(t)),
                    }
                }
                if p.exists(t) && !p.is_deleted(t) {
                    prop_assert_eq!(live, 1, "exactly one live path");
                } else {
                    prop_assert_eq!(live, 0);
                }
                // redirects always point at the current path
                for path in p.all_paths() {
                    if let Some(PathView::Redirects { to_path }) = p.view_at(path, t) {
                        prop_assert_eq!(to_path, p.current_path(t).to_string());
                    }
                }
            }
        }
    }

    #[test]
    fn event_boundary_inclusive() {
        let mut p = page();
        let when = t(2015) + Duration::days(10);
        p.push_event(when, PageEvent::Moved { to_path: "/x".into() });
        assert_eq!(p.current_path(when), "/x");
        assert_eq!(p.current_path(when - Duration::seconds(1)), "/news/story.html");
    }
}
