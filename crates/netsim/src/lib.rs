//! Simulated network substrate: time, DNS, HTTP, fetching, faults.
//!
//! The paper's measurements are, at bottom, HTTP GETs issued at particular
//! moments in (simulated) history, classified by how they fail. This crate
//! provides that machinery, independent of any particular "web":
//!
//! - [`time`]: simulation time — seconds since the Unix epoch with a proper
//!   civil-calendar conversion, because everything in the paper is dated
//!   ("added to Wikipedia in 2009", "first archived 400 days later").
//! - [`http`]: status codes, requests, responses, redirect semantics.
//! - [`dns`]: resolution outcomes and a zone-based resolver.
//! - [`error`]: the fetch-outcome taxonomy of Figure 4 — DNS failure,
//!   timeout, 404, 200, other.
//! - [`client`]: a redirect-following GET client over any [`Network`],
//!   recording the full hop chain (the paper distinguishes *initial* from
//!   *final* status codes, §2.4).
//! - [`latency`]: a deterministic latency model for API calls — the cause of
//!   IABot's missed archived copies (§4.1).
//! - [`fault`]: fault injection — geo-blocking by vantage, transient
//!   failures, rate limiting — mirroring the confounders the paper lists
//!   (§3: "blocked because of our measurement vantage point").
//! - [`retry`]: a deterministic retry/backoff policy with per-cause
//!   retryability — the counterfactual fix for the §4.1 timeout-miss bug
//!   class that IABot's single-attempt behaviour reproduces.
//!
//! The design is synchronous and deterministic (smoltcp-style event-driven
//! simulation): a fetch is a pure function of `(network state, time, rng
//! stream)`, which is what makes every figure in EXPERIMENTS.md reproducible
//! bit-for-bit.

pub mod client;
pub mod dns;
pub mod error;
pub mod events;
pub mod fault;
pub mod http;
pub mod latency;
pub mod metrics;
pub mod retry;
pub mod time;

pub use client::{Client, FetchRecord, Hop, Network, ServeResult};
pub use dns::{DnsError, DnsOutcome, StaticDns};
pub use error::{FetchError, LiveStatus};
pub use events::EventQueue;
pub use http::{Request, Response, StatusCode};
pub use latency::LatencyModel;
pub use metrics::{Counter, MetricsSnapshot, NetMetrics};
pub use retry::{Attempt, AttemptFailure, RetryCause, RetryCounts, RetryOutcome, RetryPolicy};
pub use time::{Date, Duration, SimTime};
