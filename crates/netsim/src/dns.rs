//! Simulated DNS.
//!
//! A DNS failure is the paper's strongest death signal: "symptomatic of an
//! entire site or sub-domain within a site being no longer available" (§3),
//! and the largest single category in Figure 4. The simulator models zones
//! whose registrations lapse, get re-registered by domain parkers, or flap
//! with transient server failures.

use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Why resolution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsError {
    /// The name does not exist (registration lapsed, subdomain removed).
    NxDomain,
    /// The zone's servers did not answer (transient operational failure).
    ServFail,
    /// The resolver gave up waiting.
    Timeout,
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::NxDomain => f.write_str("NXDOMAIN"),
            DnsError::ServFail => f.write_str("SERVFAIL"),
            DnsError::Timeout => f.write_str("DNS timeout"),
        }
    }
}

/// Outcome of resolving a hostname at an instant.
pub type DnsOutcome = Result<HostRecord, DnsError>;

/// What a successful resolution tells the client. We don't simulate real IP
/// addressing — the record identifies which origin will answer the TCP
/// connection, which is all HTTP needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostRecord {
    /// Identifier of the origin (site) serving this host at this time.
    pub origin_id: u64,
}

/// The lifecycle of a hostname's registration, as a time-ordered list of
/// states. Lookup takes the last state whose start precedes the query time.
#[derive(Debug, Clone, Default)]
pub struct HostTimeline {
    /// `(effective_from, state)` — must be sorted by time; enforced by
    /// [`HostTimeline::push`].
    states: Vec<(SimTime, HostState)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Resolves to the given origin.
    Active { origin_id: u64 },
    /// Registration lapsed: NXDOMAIN.
    Lapsed,
    /// Zone is broken: SERVFAIL.
    Broken,
}

impl HostTimeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a state transition. Transitions must be pushed in time order.
    pub fn push(&mut self, from: SimTime, state: HostState) {
        if let Some(&(last, _)) = self.states.last() {
            assert!(from >= last, "timeline must be pushed in time order");
        }
        self.states.push((from, state));
    }

    /// The raw transition list, time-ordered (for world serialization: a
    /// timeline round-trips by replaying these through [`HostTimeline::push`]).
    pub fn states(&self) -> &[(SimTime, HostState)] {
        &self.states
    }

    /// The state in effect at `t`, or `None` if `t` precedes registration.
    pub fn state_at(&self, t: SimTime) -> Option<HostState> {
        self.states
            .iter()
            .rev()
            .find(|&&(from, _)| from <= t)
            .map(|&(_, s)| s)
    }
}

/// A zone-table resolver: hostname → timeline.
///
/// `StaticDns` is "static" in the sense that the table is fixed after world
/// generation; answers still vary with query time via the timelines.
#[derive(Debug, Clone, Default)]
pub struct StaticDns {
    zones: HashMap<String, HostTimeline>,
}

impl StaticDns {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, host: &str, timeline: HostTimeline) {
        self.zones.insert(host.to_ascii_lowercase(), timeline);
    }

    /// Register a host that is active for the whole simulation.
    pub fn insert_active(&mut self, host: &str, origin_id: u64) {
        let mut tl = HostTimeline::new();
        tl.push(SimTime(i64::MIN / 2), HostState::Active { origin_id });
        self.insert(host, tl);
    }

    pub fn resolve(&self, host: &str, t: SimTime) -> DnsOutcome {
        let host = host.to_ascii_lowercase();
        match self.zones.get(&host).and_then(|tl| tl.state_at(t)) {
            Some(HostState::Active { origin_id }) => Ok(HostRecord { origin_id }),
            Some(HostState::Lapsed) => Err(DnsError::NxDomain),
            Some(HostState::Broken) => Err(DnsError::ServFail),
            // never registered (typo'd hostnames land here)
            None => Err(DnsError::NxDomain),
        }
    }

    pub fn len(&self) -> usize {
        self.zones.len()
    }

    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Every `(host, timeline)` pair, in arbitrary order (serializers sort).
    pub fn zones(&self) -> impl Iterator<Item = (&String, &HostTimeline)> {
        self.zones.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 6, 1)
    }

    #[test]
    fn unknown_host_is_nxdomain() {
        let dns = StaticDns::new();
        assert_eq!(dns.resolve("nosuch.example", t(2020)), Err(DnsError::NxDomain));
    }

    #[test]
    fn active_host_resolves() {
        let mut dns = StaticDns::new();
        dns.insert_active("e.org", 7);
        assert_eq!(
            dns.resolve("e.org", t(2020)),
            Ok(HostRecord { origin_id: 7 })
        );
        // case-insensitive
        assert_eq!(
            dns.resolve("E.ORG", t(2020)),
            Ok(HostRecord { origin_id: 7 })
        );
    }

    #[test]
    fn lifecycle_transitions() {
        let mut tl = HostTimeline::new();
        tl.push(t(2005), HostState::Active { origin_id: 1 });
        tl.push(t(2015), HostState::Lapsed);
        tl.push(t(2018), HostState::Active { origin_id: 99 }); // re-registered (parker)
        let mut dns = StaticDns::new();
        dns.insert("e.org", tl);

        // before registration
        assert_eq!(dns.resolve("e.org", t(2000)), Err(DnsError::NxDomain));
        // original owner
        assert_eq!(dns.resolve("e.org", t(2010)), Ok(HostRecord { origin_id: 1 }));
        // lapsed
        assert_eq!(dns.resolve("e.org", t(2016)), Err(DnsError::NxDomain));
        // re-registered to a different origin
        assert_eq!(
            dns.resolve("e.org", t(2020)),
            Ok(HostRecord { origin_id: 99 })
        );
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut tl = HostTimeline::new();
        let switch = t(2015);
        tl.push(t(2005), HostState::Active { origin_id: 1 });
        tl.push(switch, HostState::Broken);
        assert_eq!(tl.state_at(switch), Some(HostState::Broken));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut tl = HostTimeline::new();
        tl.push(t(2015), HostState::Lapsed);
        tl.push(t(2005), HostState::Lapsed);
    }

    #[test]
    fn broken_zone_servfail() {
        let mut tl = HostTimeline::new();
        tl.push(t(2005), HostState::Broken);
        let mut dns = StaticDns::new();
        dns.insert("e.org", tl);
        assert_eq!(dns.resolve("e.org", t(2010)), Err(DnsError::ServFail));
    }
}
