//! Simulation time.
//!
//! Every event in the study is dated: when a link was added to an article,
//! when each archived copy was captured, when IABot marked the link dead,
//! when we re-checked it (Figure 2's timeline). [`SimTime`] is seconds since
//! the Unix epoch; [`Date`] converts to and from the civil calendar using
//! Howard Hinnant's `days_from_civil` algorithm, so "March 2022" in the
//! paper maps to a concrete tick range here.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in seconds. Negative durations are allowed
/// (they arise from subtracting timestamps) but constructors produce
/// non-negative spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Duration {
    pub const fn seconds(s: i64) -> Self {
        Duration(s)
    }
    pub const fn minutes(m: i64) -> Self {
        Duration(m * 60)
    }
    pub const fn hours(h: i64) -> Self {
        Duration(h * 3600)
    }
    pub const fn days(d: i64) -> Self {
        Duration(d * 86_400)
    }
    pub const fn weeks(w: i64) -> Self {
        Duration(w * 7 * 86_400)
    }
    /// Calendar-agnostic "year" of 365 days — adequate for the multi-year
    /// gaps the paper plots on a log axis.
    pub const fn years(y: i64) -> Self {
        Duration(y * 365 * 86_400)
    }

    pub const fn as_seconds(self) -> i64 {
        self.0
    }
    /// Whole days, truncated toward zero.
    pub const fn as_days(self) -> i64 {
        self.0 / 86_400
    }
    /// Days as a float — what Figure 5's log-scale x-axis plots.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// An instant of simulated time: seconds since 1970-01-01T00:00:00Z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub i64);

impl SimTime {
    pub const EPOCH: SimTime = SimTime(0);

    pub const fn from_unix(secs: i64) -> Self {
        SimTime(secs)
    }

    /// Midnight UTC on the given civil date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        SimTime(days_from_civil(year, month, day) * 86_400)
    }

    pub const fn as_unix(self) -> i64 {
        self.0
    }

    pub fn date(self) -> Date {
        let days = self.0.div_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        Date { year, month, day }
    }

    pub fn year(self) -> i32 {
        self.date().year
    }

    /// Fractional years since the epoch — used for CDF x-axes over posting
    /// dates (Figure 3c).
    pub fn as_year_f64(self) -> f64 {
        1970.0 + self.0 as f64 / (365.2425 * 86_400.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let secs = self.0.rem_euclid(86_400);
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            d.year,
            d.month,
            d.day,
            secs / 3600,
            (secs % 3600) / 60,
            secs % 60
        )
    }
}

/// A civil (Gregorian, proleptic) calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl Date {
    pub fn at_midnight(self) -> SimTime {
        SimTime::from_ymd(self.year, self.month, self.day)
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month {m}");
    debug_assert!((1..=31).contains(&d), "day {d}");
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(SimTime::from_ymd(1970, 1, 1), SimTime(0));
        let d = SimTime(0).date();
        assert_eq!((d.year, d.month, d.day), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // the paper's study month
        assert_eq!(SimTime::from_ymd(2022, 3, 1).as_unix(), 1_646_092_800);
        // leap day
        assert_eq!(
            SimTime::from_ymd(2020, 2, 29) + Duration::days(1),
            SimTime::from_ymd(2020, 3, 1)
        );
        // non-leap century year
        assert_eq!(
            SimTime::from_ymd(1900, 2, 28) + Duration::days(1),
            SimTime::from_ymd(1900, 3, 1)
        );
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_ymd(2022, 3, 15) + Duration::hours(13) + Duration::minutes(5);
        assert_eq!(t.to_string(), "2022-03-15T13:05:00Z");
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimTime::from_ymd(2015, 6, 1);
        let b = SimTime::from_ymd(2018, 6, 1);
        assert_eq!((b - a).as_days(), 1096); // 2016 is a leap year
        assert!(!(b - a).is_negative());
        assert!((a - b).is_negative());
        assert_eq!(a + (b - a), b);
    }

    #[test]
    fn year_accessor() {
        assert_eq!(SimTime::from_ymd(2009, 9, 30).year(), 2009);
        let y = SimTime::from_ymd(2015, 7, 1).as_year_f64();
        assert!((y - 2015.5).abs() < 0.01, "{y}");
    }

    #[test]
    fn negative_times_before_epoch() {
        let t = SimTime::from_ymd(1969, 12, 31);
        assert_eq!(t.as_unix(), -86_400);
        let d = t.date();
        assert_eq!((d.year, d.month, d.day), (1969, 12, 31));
    }

    proptest! {
        #[test]
        fn civil_round_trip(days in -200_000i64..200_000) {
            let (y, m, d) = civil_from_days(days);
            prop_assert_eq!(days_from_civil(y, m, d), days);
            prop_assert!((1..=12u32).contains(&m));
            prop_assert!((1..=31u32).contains(&d));
        }

        #[test]
        fn date_ordering_matches_time_ordering(a in -200_000i64..200_000, b in -200_000i64..200_000) {
            let ta = SimTime(a * 86_400);
            let tb = SimTime(b * 86_400);
            prop_assert_eq!(ta.cmp(&tb), ta.date().cmp(&tb.date()));
        }
    }
}
