//! Deterministic latency model.
//!
//! §4.1's central finding is an artifact of latency: IABot queries the
//! Wayback Availability API with a client-side timeout, and when the API
//! responds slowly the bot concludes "never archived". To reproduce that we
//! need response latencies with a realistic heavy tail, generated
//! deterministically from `(seed, request key, time)` so runs are replayable.
//!
//! The model is log-normal (median `m`, shape `sigma`) plus a Pareto-ish
//! tail: with probability `tail_p`, the draw is multiplied by a factor in
//! `[tail_min_factor, tail_max_factor]`. Log-normals fit measured service
//! latency well in practice, and the explicit tail knob lets ablations dial
//! the timeout-miss rate (EXPERIMENTS.md §7).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Milliseconds of simulated latency.
pub type Millis = u64;

/// A deterministic latency distribution.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    seed: u64,
    /// Median latency, ms.
    pub median_ms: f64,
    /// Log-normal shape parameter.
    pub sigma: f64,
    /// Probability of a heavy-tail event.
    pub tail_p: f64,
    /// Multiplier range for tail events.
    pub tail_factor: (f64, f64),
}

impl LatencyModel {
    /// A model shaped like a public lookup API under load: 300 ms median
    /// with occasional multi-second stalls.
    pub fn lookup_api(seed: u64) -> Self {
        LatencyModel {
            seed,
            median_ms: 300.0,
            sigma: 0.8,
            tail_p: 0.15,
            tail_factor: (8.0, 60.0),
        }
    }

    /// A fast, well-behaved service (used for origin servers).
    pub fn origin(seed: u64) -> Self {
        LatencyModel {
            seed,
            median_ms: 120.0,
            sigma: 0.5,
            tail_p: 0.02,
            tail_factor: (4.0, 20.0),
        }
    }

    pub fn with_median(mut self, ms: f64) -> Self {
        self.median_ms = ms;
        self
    }

    pub fn with_tail(mut self, p: f64, lo: f64, hi: f64) -> Self {
        self.tail_p = p;
        self.tail_factor = (lo, hi);
        self
    }

    /// Latency for one request, identified by an arbitrary key and a nonce
    /// (e.g. the request time). Same inputs ⇒ same latency.
    pub fn sample(&self, key: &str, nonce: u64) -> Millis {
        let h = fnv1a(key.as_bytes()) ^ nonce.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ h);
        // log-normal via Box–Muller on two uniform draws
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let mut ms = self.median_ms * (self.sigma * z).exp();
        if rng.gen_bool(self.tail_p.clamp(0.0, 1.0)) {
            ms *= rng.gen_range(self.tail_factor.0..=self.tail_factor.1);
        }
        ms.round().max(1.0) as Millis
    }

    /// Would a request with this key/nonce exceed a client timeout of
    /// `timeout_ms`? This is the exact predicate IABot's availability lookup
    /// evaluates (§4.1).
    pub fn exceeds_timeout(&self, key: &str, nonce: u64, timeout_ms: Millis) -> bool {
        self.sample(key, nonce) > timeout_ms
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let m = LatencyModel::lookup_api(42);
        assert_eq!(m.sample("k", 1), m.sample("k", 1));
        let other = LatencyModel::lookup_api(43);
        // different seed almost surely differs for some key
        assert!((0..64).any(|i| m.sample("k", i) != other.sample("k", i)));
    }

    #[test]
    fn median_is_roughly_right() {
        let m = LatencyModel::lookup_api(7).with_tail(0.0, 1.0, 1.0);
        let mut samples: Vec<u64> = (0..2000).map(|i| m.sample("key", i)).collect();
        samples.sort();
        let med = samples[samples.len() / 2] as f64;
        assert!((150.0..600.0).contains(&med), "median {med}");
    }

    #[test]
    fn tail_events_occur_at_configured_rate() {
        let m = LatencyModel::lookup_api(7);
        let timeout = 5_000; // ms
        let misses = (0..5000u64).filter(|&i| m.exceeds_timeout("k", i, timeout)).count();
        let rate = misses as f64 / 5000.0;
        // with tail_p = 0.15 and factors 8–60x off a 300ms median, a 5s
        // timeout should trip on a noticeable but minority fraction
        assert!((0.02..0.30).contains(&rate), "rate {rate}");
    }

    #[test]
    fn no_tail_rarely_exceeds_generous_timeout() {
        let m = LatencyModel::origin(7).with_tail(0.0, 1.0, 1.0);
        let misses = (0..2000u64).filter(|&i| m.exceeds_timeout("k", i, 10_000)).count();
        assert!(misses < 5, "{misses}");
    }

    #[test]
    fn latency_is_positive() {
        let m = LatencyModel::origin(1);
        for i in 0..200 {
            assert!(m.sample("x", i) >= 1);
        }
    }
}
