//! The fetch-outcome taxonomy of the paper's Figure 4.
//!
//! Every live-web GET resolves to exactly one of five categories (§3):
//! DNS failure, timeout, 404, 200, or "other". [`LiveStatus`] is that
//! classification; [`FetchError`] is the transport-level error that produced
//! the non-HTTP categories.

use crate::dns::DnsError;
use crate::http::StatusCode;
use std::fmt;

/// A transport-level failure: the request never produced an HTTP response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchError {
    /// DNS resolution failed (NXDOMAIN, SERVFAIL, or resolver timeout).
    Dns(DnsError),
    /// TCP or TLS connection setup timed out.
    ConnectTimeout,
    /// Connected, but the server never completed a response in time.
    ResponseTimeout,
    /// The redirect chain exceeded the hop limit (treated as a broken fetch;
    /// loops manifest this way).
    TooManyRedirects,
    /// A redirect response carried no Location header.
    MalformedRedirect,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Dns(e) => write!(f, "DNS failure: {e}"),
            FetchError::ConnectTimeout => f.write_str("connection timeout"),
            FetchError::ResponseTimeout => f.write_str("response timeout"),
            FetchError::TooManyRedirects => f.write_str("too many redirects"),
            FetchError::MalformedRedirect => f.write_str("malformed redirect"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Figure 4's five outcome categories for a URL fetched on the live web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiveStatus {
    /// DNS resolution for the hostname returned an error.
    DnsFailure,
    /// TCP/TLS connection setup timed out.
    Timeout,
    /// Final status code (after redirections) was 404.
    NotFound,
    /// Final status code was 200.
    Ok,
    /// Any other final status code (503, 403, …) or fetch anomaly.
    Other,
}

impl LiveStatus {
    /// Classify a completed fetch: either a transport error or a final
    /// status code after redirections.
    pub fn classify(result: &Result<StatusCode, FetchError>) -> LiveStatus {
        match result {
            Err(FetchError::Dns(_)) => LiveStatus::DnsFailure,
            Err(FetchError::ConnectTimeout) | Err(FetchError::ResponseTimeout) => {
                LiveStatus::Timeout
            }
            Err(FetchError::TooManyRedirects) | Err(FetchError::MalformedRedirect) => {
                LiveStatus::Other
            }
            Ok(code) if *code == StatusCode::NOT_FOUND => LiveStatus::NotFound,
            Ok(code) if *code == StatusCode::OK => LiveStatus::Ok,
            Ok(_) => LiveStatus::Other,
        }
    }

    /// Label used in Figure 4's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            LiveStatus::DnsFailure => "DNS Failure",
            LiveStatus::Timeout => "Timeout",
            LiveStatus::NotFound => "404",
            LiveStatus::Ok => "200",
            LiveStatus::Other => "Other",
        }
    }

    /// All categories in the paper's plotting order.
    pub const ALL: [LiveStatus; 5] = [
        LiveStatus::DnsFailure,
        LiveStatus::Timeout,
        LiveStatus::NotFound,
        LiveStatus::Ok,
        LiveStatus::Other,
    ];
}

impl fmt::Display for LiveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_dns() {
        for e in [DnsError::NxDomain, DnsError::ServFail, DnsError::Timeout] {
            assert_eq!(
                LiveStatus::classify(&Err(FetchError::Dns(e))),
                LiveStatus::DnsFailure
            );
        }
    }

    #[test]
    fn classify_timeouts() {
        assert_eq!(
            LiveStatus::classify(&Err(FetchError::ConnectTimeout)),
            LiveStatus::Timeout
        );
        assert_eq!(
            LiveStatus::classify(&Err(FetchError::ResponseTimeout)),
            LiveStatus::Timeout
        );
    }

    #[test]
    fn classify_status_codes() {
        assert_eq!(
            LiveStatus::classify(&Ok(StatusCode::NOT_FOUND)),
            LiveStatus::NotFound
        );
        assert_eq!(LiveStatus::classify(&Ok(StatusCode::OK)), LiveStatus::Ok);
        for code in [403, 410, 500, 503, 301] {
            assert_eq!(
                LiveStatus::classify(&Ok(StatusCode(code))),
                LiveStatus::Other,
                "{code}"
            );
        }
    }

    #[test]
    fn classify_redirect_pathologies_as_other() {
        assert_eq!(
            LiveStatus::classify(&Err(FetchError::TooManyRedirects)),
            LiveStatus::Other
        );
        assert_eq!(
            LiveStatus::classify(&Err(FetchError::MalformedRedirect)),
            LiveStatus::Other
        );
    }

    #[test]
    fn labels_match_figure4() {
        let labels: Vec<&str> = LiveStatus::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["DNS Failure", "Timeout", "404", "200", "Other"]);
    }
}
