//! HTTP request/response types and status-code semantics.
//!
//! Only the subset the study exercises: GET requests, status codes, a
//! `Location` header for redirects, and a body. The paper's analysis hinges
//! on status-code classes — 2xx vs 3xx vs 404 vs other — and on the
//! distinction between a redirect's *kind* (permanent vs temporary) when the
//! archive records it.

use crate::latency::Millis;
use crate::time::SimTime;
use permadead_url::Url;
use std::fmt;

/// An HTTP status code. A newtype over `u16` with the class helpers the
/// pipeline needs; arbitrary codes are representable because archives store
/// whatever the origin said, including nonsense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    pub const OK: StatusCode = StatusCode(200);
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    pub const FOUND: StatusCode = StatusCode(302);
    pub const SEE_OTHER: StatusCode = StatusCode(303);
    pub const TEMPORARY_REDIRECT: StatusCode = StatusCode(307);
    pub const PERMANENT_REDIRECT: StatusCode = StatusCode(308);
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    pub const GONE: StatusCode = StatusCode(410);
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    pub const fn is_success(self) -> bool {
        self.0 >= 200 && self.0 < 300
    }
    pub const fn is_redirect(self) -> bool {
        self.0 >= 300 && self.0 < 400
    }
    pub const fn is_client_error(self) -> bool {
        self.0 >= 400 && self.0 < 500
    }
    pub const fn is_server_error(self) -> bool {
        self.0 >= 500 && self.0 < 600
    }
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The reason phrase, for rendering.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            410 => "Gone",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// A GET request, as issued by bots and the measurement pipeline.
#[derive(Debug, Clone)]
pub struct Request {
    pub url: Url,
    /// Coarse client vantage; origins may geo-block (§3 mentions vantage-
    /// dependent blocking as a confounder).
    pub vantage: Vantage,
    /// When the request is issued — the web answers differently at different
    /// points in its history.
    pub time: SimTime,
    /// 0-based retry index. Probabilistic faults re-roll per attempt while
    /// everything else (geo-blocks, windows) is attempt-independent;
    /// `0` is the single-attempt behaviour every existing caller gets.
    pub attempt: u32,
}

impl Request {
    pub fn get(url: Url, time: SimTime) -> Request {
        Request {
            url,
            vantage: Vantage::default(),
            time,
            attempt: 0,
        }
    }

    pub fn from_vantage(mut self, vantage: Vantage) -> Request {
        self.vantage = vantage;
        self
    }

    pub fn with_attempt(mut self, attempt: u32) -> Request {
        self.attempt = attempt;
        self
    }
}

/// Measurement vantage point, at the granularity geo-blocking operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Vantage {
    /// The paper's vantage (a US university).
    #[default]
    UsEducation,
    Europe,
    Asia,
    /// Archive crawler infrastructure.
    Crawler,
}

/// A single-hop HTTP response (redirects are *not* followed at this layer).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: StatusCode,
    /// Redirect target for 3xx responses.
    pub location: Option<Url>,
    /// Response headers beyond `Location`, in emission order. The study only
    /// reads `Retry-After` (429/503 back-pressure), but origins may say
    /// anything.
    pub headers: Vec<(String, String)>,
    /// Response body (HTML). Empty for redirects and most errors.
    pub body: String,
}

impl Response {
    pub fn ok(body: String) -> Response {
        Response {
            status: StatusCode::OK,
            location: None,
            headers: Vec::new(),
            body,
        }
    }

    pub fn redirect(status: StatusCode, to: Url) -> Response {
        debug_assert!(status.is_redirect());
        Response {
            status,
            location: Some(to),
            headers: Vec::new(),
            body: String::new(),
        }
    }

    pub fn status_only(status: StatusCode) -> Response {
        Response {
            status,
            location: None,
            headers: Vec::new(),
            body: String::new(),
        }
    }

    pub fn not_found() -> Response {
        Response::status_only(StatusCode::NOT_FOUND)
    }

    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `Retry-After`, converted to ms. Only the delta-seconds form exists in
    /// the simulation (no HTTP-date clock to parse against).
    pub fn retry_after_ms(&self) -> Option<Millis> {
        self.header("Retry-After")?
            .trim()
            .parse::<Millis>()
            .ok()
            .map(|secs| secs.saturating_mul(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode(204).is_success());
        assert!(StatusCode::MOVED_PERMANENTLY.is_redirect());
        assert!(StatusCode(399).is_redirect());
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert!(!StatusCode::OK.is_redirect());
        assert!(!StatusCode(600).is_server_error());
    }

    #[test]
    fn display() {
        assert_eq!(StatusCode::NOT_FOUND.to_string(), "404 Not Found");
        assert_eq!(StatusCode(418).to_string(), "418 Unknown");
    }

    #[test]
    fn response_constructors() {
        let ok = Response::ok("hi".into());
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(ok.body, "hi");

        let to = Url::parse("http://e.org/new").unwrap();
        let r = Response::redirect(StatusCode::MOVED_PERMANENTLY, to.clone());
        assert_eq!(r.location, Some(to));
        assert!(r.body.is_empty());

        assert_eq!(Response::not_found().status, StatusCode::NOT_FOUND);
        assert!(ok.headers.is_empty(), "constructors emit no headers");
    }

    #[test]
    fn retry_after_header_parses_to_ms() {
        let r = Response::status_only(StatusCode::SERVICE_UNAVAILABLE).with_header("Retry-After", "7");
        assert_eq!(r.header("retry-after"), Some("7"));
        assert_eq!(r.retry_after_ms(), Some(7_000));
        // absent, or present but not delta-seconds: no hint
        assert_eq!(Response::not_found().retry_after_ms(), None);
        let bad = Response::status_only(StatusCode::SERVICE_UNAVAILABLE)
            .with_header("Retry-After", "Fri, 01 Jan 2100 00:00:00 GMT");
        assert_eq!(bad.retry_after_ms(), None);
    }

    #[test]
    fn request_builder() {
        let u = Url::parse("http://e.org/x").unwrap();
        let t = SimTime::from_ymd(2022, 3, 1);
        let r = Request::get(u.clone(), t).from_vantage(Vantage::Europe);
        assert_eq!(r.url, u);
        assert_eq!(r.time, t);
        assert_eq!(r.vantage, Vantage::Europe);
        assert_eq!(Request::get(u, t).vantage, Vantage::UsEducation);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn redirect_requires_3xx() {
        let _ = Response::redirect(StatusCode::OK, Url::parse("http://e.org/").unwrap());
    }
}
