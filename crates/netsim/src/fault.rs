//! Fault injection.
//!
//! The paper is careful about confounders: a timeout or a 403 "is hard to
//! tell" apart from true death — the service may be temporarily down, rate
//! limiting, or geo-blocking the measurement vantage (§3, citing the CDN
//! geo-blocking study). The simulated web reproduces those behaviours so the
//! pipeline's "Timeout"/"Other" buckets are populated for the right reasons,
//! and so tests can inject adversity deliberately (smoltcp-style fault
//! options).

use crate::http::Vantage;
use crate::time::SimTime;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Per-origin fault behaviour. All probabilities are evaluated
/// deterministically from `(origin seed, url, day)` so that a re-fetch on the
/// same day reproduces the same outcome, while fetches months apart can
/// differ — exactly the property behind "links that were dysfunctional in
/// the past work fine today".
#[derive(Debug, Clone)]
pub struct FaultProfile {
    seed: u64,
    /// Probability that any request experiences a connect timeout that day.
    pub timeout_p: f64,
    /// Probability of answering 503 instead of the real response that day.
    pub unavailable_p: f64,
    /// Vantages that receive 403 Forbidden for every request.
    pub geo_blocked: Vec<Vantage>,
    /// If set, requests beyond this many per day answer 429.
    pub daily_rate_limit: Option<DailyRateLimiter>,
    /// Deterministic fault windows: within `[from, to)` every request hits
    /// `fault`. Used to script outages that cover a bot sweep (the paper's
    /// links that were "dysfunctional in the past but functional now").
    pub windows: Vec<FaultWindow>,
}

/// A scripted fault interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    pub from: SimTime,
    pub to: SimTime,
    pub fault: Fault,
}

impl FaultProfile {
    /// A well-behaved origin: no faults.
    pub fn none(seed: u64) -> Self {
        FaultProfile {
            seed,
            timeout_p: 0.0,
            unavailable_p: 0.0,
            geo_blocked: Vec::new(),
            daily_rate_limit: None,
            windows: Vec::new(),
        }
    }

    /// The seed the probabilistic faults draw from (for serialization; a
    /// profile round-trips through [`FaultProfile::none`] + the builders).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Script a fault for every request in `[from, to)`.
    pub fn with_window(mut self, from: SimTime, to: SimTime, fault: Fault) -> Self {
        self.windows.push(FaultWindow { from, to, fault });
        self
    }

    /// Answer at most `per_day` requests per day; the rest get 429.
    pub fn with_daily_rate_limit(mut self, per_day: u32) -> Self {
        self.daily_rate_limit = Some(DailyRateLimiter::new(per_day));
        self
    }

    pub fn with_timeouts(mut self, p: f64) -> Self {
        self.timeout_p = p;
        self
    }

    pub fn with_unavailable(mut self, p: f64) -> Self {
        self.unavailable_p = p;
        self
    }

    pub fn with_geo_block(mut self, vantages: &[Vantage]) -> Self {
        self.geo_blocked = vantages.to_vec();
        self
    }

    /// The fault, if any, this request hits. Evaluated before the origin's
    /// real handler.
    pub fn check(&self, url_key: &str, vantage: Vantage, t: SimTime) -> Option<Fault> {
        self.check_attempt(url_key, vantage, t, 0)
    }

    /// Like [`check`](Self::check), but for the `attempt`-th retry of the
    /// same request. Geo-blocks, scripted windows and the rate limiter are
    /// attempt-independent (a 403 does not clear on retry; every retry still
    /// burns daily budget), while the probabilistic faults re-roll — a retry
    /// is a genuinely new draw, which is the whole premise of the §4.1 retry
    /// counterfactual. `attempt == 0` is bit-identical to `check`.
    pub fn check_attempt(
        &self,
        url_key: &str,
        vantage: Vantage,
        t: SimTime,
        attempt: u32,
    ) -> Option<Fault> {
        if self.geo_blocked.contains(&vantage) {
            return Some(Fault::GeoBlocked);
        }
        if let Some(w) = self.windows.iter().find(|w| w.from <= t && t < w.to) {
            return Some(w.fault);
        }
        if let Some(limiter) = &self.daily_rate_limit {
            if !limiter.admit(t) {
                return Some(Fault::RateLimited);
            }
        }
        let day = t.as_unix().div_euclid(86_400) as u64;
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                ^ fnv1a(url_key.as_bytes())
                ^ day.wrapping_mul(0x9E3779B97F4A7C15)
                ^ (attempt as u64).wrapping_mul(0xD1B54A32D192ED03),
        );
        if self.timeout_p > 0.0 && rng.gen_bool(self.timeout_p.clamp(0.0, 1.0)) {
            return Some(Fault::ConnectTimeout);
        }
        if self.unavailable_p > 0.0 && rng.gen_bool(self.unavailable_p.clamp(0.0, 1.0)) {
            return Some(Fault::Unavailable);
        }
        None
    }

    /// The `Retry-After` value (delta-seconds) an origin advertises alongside
    /// a 429/503 it just served at `t`. Deterministic in `(profile, t)` and
    /// capped at [`MAX_RETRY_AFTER_SECS`] so a hinted backoff can never dwarf
    /// a retry budget:
    ///
    /// - 429: the daily budget resets at the next UTC midnight, so the honest
    ///   hint is the time until then (capped);
    /// - a scripted 503 window: time until the window's end (capped);
    /// - a probabilistic 503: the origin has no idea either — a token 1s.
    ///
    /// Timeouts and geo-blocks produce no response, hence no header.
    pub fn retry_after_secs(&self, fault: Fault, t: SimTime) -> Option<u64> {
        match fault {
            Fault::RateLimited => {
                let next_midnight = (t.as_unix().div_euclid(86_400) + 1) * 86_400;
                let secs = (next_midnight - t.as_unix()).max(1) as u64;
                Some(secs.min(MAX_RETRY_AFTER_SECS))
            }
            Fault::Unavailable => {
                let window_end = self
                    .windows
                    .iter()
                    .find(|w| w.fault == Fault::Unavailable && w.from <= t && t < w.to)
                    .map(|w| (w.to.as_unix() - t.as_unix()).max(1) as u64);
                Some(window_end.unwrap_or(1).min(MAX_RETRY_AFTER_SECS))
            }
            Fault::ConnectTimeout | Fault::GeoBlocked => None,
        }
    }
}

/// Ceiling on advertised `Retry-After` values, seconds. Real origins clamp
/// too (nobody says "retry in 14 hours"); here it also keeps hinted waits
/// commensurate with retry budgets like serve's default 30s.
pub const MAX_RETRY_AFTER_SECS: u64 = 30;

/// A deterministic per-day admission counter. Shared behind a mutex because
/// the network trait takes `&self`; cloning copies the day-count table, so a
/// profile cloned mid-run (fault campaigns swap profiles onto sites, config
/// structs derive `Clone`) remembers what the day has already served instead
/// of silently handing the origin a second budget.
#[derive(Debug, Default)]
pub struct DailyRateLimiter {
    per_day: u32,
    served: Mutex<HashMap<i64, u32>>,
}

impl DailyRateLimiter {
    pub fn new(per_day: u32) -> Self {
        DailyRateLimiter {
            per_day,
            served: Mutex::new(HashMap::new()),
        }
    }

    /// Admit a request at `t`? Increments the day's count when admitted.
    ///
    /// Counts for days earlier than `t`'s are pruned on the way in: a
    /// long-lived `permadead serve` process walks its serving clock forward
    /// monotonically, so stale days can never be consulted again and keeping
    /// them was a slow leak.
    pub fn admit(&self, t: SimTime) -> bool {
        let day = t.as_unix().div_euclid(86_400);
        let mut served = self.served.lock();
        served.retain(|&d, _| d >= day);
        let count = served.entry(day).or_insert(0);
        if *count < self.per_day {
            *count += 1;
            true
        } else {
            false
        }
    }

    /// Days currently tracked (the regression surface for the prune above).
    pub fn tracked_days(&self) -> usize {
        self.served.lock().len()
    }

    /// The configured per-day budget. Day counts are runtime state and are
    /// *not* serialized with a world: [`DailyRateLimiter::admit`] prunes every
    /// day earlier than the query's, so a freshly-constructed limiter behaves
    /// identically from the first post-load request onward.
    pub fn per_day(&self) -> u32 {
        self.per_day
    }
}

impl Clone for DailyRateLimiter {
    fn clone(&self) -> Self {
        DailyRateLimiter {
            per_day: self.per_day,
            served: Mutex::new(self.served.lock().clone()),
        }
    }
}

/// An injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Connection setup never completes → the client reports a timeout.
    ConnectTimeout,
    /// 503 Service Unavailable.
    Unavailable,
    /// 403 Forbidden for this vantage.
    GeoBlocked,
    /// 429 Too Many Requests: the per-day budget is exhausted.
    RateLimited,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noon(y: i32, m: u32, d: u32) -> SimTime {
        SimTime::from_ymd(y, m, d) + crate::time::Duration::hours(12)
    }

    #[test]
    fn no_faults_by_default() {
        let f = FaultProfile::none(1);
        assert_eq!(f.check("http://e.org/x", Vantage::UsEducation, noon(2022, 3, 1)), None);
    }

    #[test]
    fn geo_block_hits_configured_vantage_only() {
        let f = FaultProfile::none(1).with_geo_block(&[Vantage::UsEducation]);
        assert_eq!(
            f.check("u", Vantage::UsEducation, noon(2022, 3, 1)),
            Some(Fault::GeoBlocked)
        );
        assert_eq!(f.check("u", Vantage::Europe, noon(2022, 3, 1)), None);
    }

    #[test]
    fn same_day_same_outcome() {
        let f = FaultProfile::none(9).with_timeouts(0.5);
        let morning = SimTime::from_ymd(2022, 3, 5) + crate::time::Duration::hours(2);
        let evening = SimTime::from_ymd(2022, 3, 5) + crate::time::Duration::hours(22);
        assert_eq!(
            f.check("u", Vantage::UsEducation, morning),
            f.check("u", Vantage::UsEducation, evening)
        );
    }

    #[test]
    fn outcomes_vary_across_days() {
        let f = FaultProfile::none(9).with_timeouts(0.5);
        let outcomes: Vec<_> = (1..=20)
            .map(|d| f.check("u", Vantage::UsEducation, noon(2022, 3, d)))
            .collect();
        assert!(outcomes.contains(&Some(Fault::ConnectTimeout)));
        assert!(outcomes.contains(&None));
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let f = FaultProfile::none(3).with_unavailable(0.2);
        let hits = (0..1000)
            .filter(|i| {
                f.check(
                    &format!("http://e.org/{i}"),
                    Vantage::UsEducation,
                    noon(2022, 3, 1),
                ) == Some(Fault::Unavailable)
            })
            .count();
        assert!((120..280).contains(&hits), "{hits}");
    }

    #[test]
    fn daily_rate_limit_admits_then_429s_and_resets() {
        let f = FaultProfile::none(1).with_daily_rate_limit(3);
        let day1 = noon(2022, 3, 1);
        for _ in 0..3 {
            assert_eq!(f.check("u", Vantage::UsEducation, day1), None);
        }
        assert_eq!(
            f.check("u", Vantage::UsEducation, day1),
            Some(Fault::RateLimited)
        );
        // next day the budget is fresh
        assert_eq!(f.check("u", Vantage::UsEducation, noon(2022, 3, 2)), None);
    }

    /// Regression: `Clone` used to construct a fresh limiter, so any profile
    /// clone mid-run silently reset the day's spend and an exhausted origin
    /// came back with a full budget.
    #[test]
    fn rate_limiter_clone_preserves_the_days_spend() {
        let f = FaultProfile::none(1).with_daily_rate_limit(2);
        let day1 = noon(2022, 3, 1);
        for _ in 0..2 {
            assert_eq!(f.check("u", Vantage::UsEducation, day1), None);
        }
        assert_eq!(f.check("u", Vantage::UsEducation, day1), Some(Fault::RateLimited));
        // the clone inherits the exhausted budget, not a fresh one
        let g = f.clone();
        assert_eq!(
            g.check("u", Vantage::UsEducation, day1),
            Some(Fault::RateLimited),
            "clone forgot the day's spend"
        );
        // and it is a copy, not a shared handle: the original rolling over
        // to a new day does not refill the clone retroactively for day 1
        assert_eq!(f.check("u", Vantage::UsEducation, noon(2022, 3, 2)), None);
        assert_eq!(g.check("u", Vantage::UsEducation, day1), Some(Fault::RateLimited));

        // the bare limiter, for the same contract without the profile wrap
        let limiter = DailyRateLimiter::new(1);
        assert!(limiter.admit(day1));
        let copied = limiter.clone();
        assert!(!copied.admit(day1), "cloned limiter must remember the spend");
    }

    #[test]
    fn fault_window_is_deterministic_and_bounded() {
        let y = |yr| SimTime::from_ymd(yr, 1, 1);
        let f = FaultProfile::none(1).with_window(y(2020), y(2021), Fault::Unavailable);
        assert_eq!(f.check("u", Vantage::UsEducation, y(2020)), Some(Fault::Unavailable));
        assert_eq!(
            f.check("u", Vantage::UsEducation, y(2020) + crate::time::Duration::days(100)),
            Some(Fault::Unavailable)
        );
        // half-open: the end instant is healthy again
        assert_eq!(f.check("u", Vantage::UsEducation, y(2021)), None);
        assert_eq!(f.check("u", Vantage::UsEducation, y(2019)), None);
    }

    #[test]
    fn rate_limiter_prunes_past_days() {
        let limiter = DailyRateLimiter::new(2);
        for d in 1..=30 {
            assert!(limiter.admit(noon(2022, 3, d)));
            assert_eq!(limiter.tracked_days(), 1, "day {d}: stale entries kept");
        }
        // same-day counting still works after pruning
        let last = noon(2022, 3, 30);
        assert!(limiter.admit(last));
        assert!(!limiter.admit(last));
    }

    #[test]
    fn attempt_zero_matches_check_and_retries_reroll() {
        let f = FaultProfile::none(9).with_timeouts(0.5);
        let t = noon(2022, 3, 5);
        for d in 1..=10 {
            let t = noon(2022, 3, d);
            assert_eq!(
                f.check("u", Vantage::UsEducation, t),
                f.check_attempt("u", Vantage::UsEducation, t, 0)
            );
        }
        // retries draw independently: across attempts both outcomes appear
        let outcomes: Vec<_> = (0..20)
            .map(|a| f.check_attempt("u", Vantage::UsEducation, t, a))
            .collect();
        assert!(outcomes.contains(&Some(Fault::ConnectTimeout)));
        assert!(outcomes.contains(&None));
        // and each attempt's roll is itself deterministic
        for a in 0..20 {
            assert_eq!(
                f.check_attempt("u", Vantage::UsEducation, t, a),
                f.check_attempt("u", Vantage::UsEducation, t, a)
            );
        }
    }

    #[test]
    fn attempts_do_not_clear_geo_blocks_and_burn_rate_budget() {
        let f = FaultProfile::none(1).with_geo_block(&[Vantage::UsEducation]);
        let t = noon(2022, 3, 1);
        for a in 0..5 {
            assert_eq!(
                f.check_attempt("u", Vantage::UsEducation, t, a),
                Some(Fault::GeoBlocked)
            );
        }
        let f = FaultProfile::none(1).with_daily_rate_limit(2);
        assert_eq!(f.check_attempt("u", Vantage::UsEducation, t, 0), None);
        assert_eq!(f.check_attempt("u", Vantage::UsEducation, t, 1), None);
        assert_eq!(
            f.check_attempt("u", Vantage::UsEducation, t, 2),
            Some(Fault::RateLimited)
        );
    }

    #[test]
    fn retry_after_hints_are_bounded_and_fault_shaped() {
        let t = noon(2022, 3, 1); // 12h before midnight — beyond the cap
        let f = FaultProfile::none(1).with_daily_rate_limit(0);
        assert_eq!(f.retry_after_secs(Fault::RateLimited, t), Some(MAX_RETRY_AFTER_SECS));
        // one second before midnight the honest hint fits under the cap
        let almost = SimTime::from_ymd(2022, 3, 2) - crate::time::Duration::seconds(1);
        assert_eq!(f.retry_after_secs(Fault::RateLimited, almost), Some(1));
        // scripted window: hint is the time to the window's end, capped
        let from = noon(2022, 3, 3);
        let f = FaultProfile::none(1).with_window(
            from,
            from + crate::time::Duration::seconds(10),
            Fault::Unavailable,
        );
        assert_eq!(
            f.retry_after_secs(Fault::Unavailable, from + crate::time::Duration::seconds(4)),
            Some(6)
        );
        assert_eq!(f.retry_after_secs(Fault::Unavailable, from - crate::time::Duration::seconds(5)), Some(1), "outside any window: the token hint");
        // no response, no header
        assert_eq!(f.retry_after_secs(Fault::ConnectTimeout, t), None);
        assert_eq!(f.retry_after_secs(Fault::GeoBlocked, t), None);
    }

    #[test]
    fn timeout_checked_before_unavailable() {
        let f = FaultProfile::none(3).with_timeouts(1.0).with_unavailable(1.0);
        assert_eq!(
            f.check("u", Vantage::UsEducation, noon(2022, 3, 1)),
            Some(Fault::ConnectTimeout)
        );
    }
}
