//! A discrete-event queue.
//!
//! The whole reproduction is one long discrete-event simulation: link
//! postings, crawler captures, and bot sweeps interleave over 18 simulated
//! years. This queue gives that replay a proper home — a time-ordered heap
//! with deterministic tie-breaking (same-instant events run in insertion
//! order per priority class), so "a same-day EventStream capture sees the
//! link already posted" is a scheduling guarantee, not an accident.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority class for events sharing an instant: lower runs first.
pub type Priority = u8;

struct Entry<E> {
    at: SimTime,
    priority: Priority,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first
        other.cmp_key().cmp(&self.cmp_key())
    }
}

impl<E> Entry<E> {
    fn cmp_key(&self) -> (i64, Priority, u64) {
        (self.at.as_unix(), self.priority, self.seq)
    }
}

/// A deterministic event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Option<SimTime>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: None,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event. Events at the same instant run in ascending
    /// priority, then insertion order.
    pub fn schedule(&mut self, at: SimTime, priority: Priority, event: E) {
        self.heap.push(Entry {
            at,
            priority,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the next event. Advances the simulation clock; popping never goes
    /// backwards in time. An event scheduled *before* an instant that has
    /// already been popped (a re-check rescheduled into the past by a
    /// sub-interval cadence) is delivered late, at the clock — exactly what
    /// a real scheduler does with an overdue job.
    pub fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let at = match self.now {
            Some(now) if entry.at < now => now,
            _ => entry.at,
        };
        self.now = Some(at);
        Some((at, entry.event))
    }

    /// The instant of the most recently popped event.
    pub fn now(&self) -> Option<SimTime> {
        self.now
    }

    /// The instant of the next pending event, without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain every event in order, calling `f` on each. `f` may schedule
    /// more events through the handle it receives.
    pub fn run(mut self, mut f: impl FnMut(&mut EventQueue<E>, SimTime, E)) {
        while let Some(entry) = self.heap.pop() {
            self.now = Some(entry.at);
            f(&mut self, entry.at, entry.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(day: i64) -> SimTime {
        SimTime(day * 86_400)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 0, "c");
        q.schedule(t(1), 0, "a");
        q.schedule(t(3), 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_orders_by_priority_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 2, "sweep");
        q.schedule(t(1), 1, "capture-1");
        q.schedule(t(1), 0, "post");
        q.schedule(t(1), 1, "capture-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["post", "capture-1", "capture-2", "sweep"]);
    }

    #[test]
    fn clock_tracks_popped_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), None);
        q.schedule(t(2), 0, ());
        q.schedule(t(7), 0, ());
        assert_eq!(q.peek_time(), Some(t(2)));
        q.pop_next();
        assert_eq!(q.now(), Some(t(2)));
        q.pop_next();
        assert_eq!(q.now(), Some(t(7)));
        assert!(q.pop_next().is_none());
        assert_eq!(q.now(), Some(t(7)));
    }

    #[test]
    fn run_allows_rescheduling() {
        // an event that spawns a follow-up 10 days later, three times
        let mut q = EventQueue::new();
        q.schedule(t(0), 0, 0u32);
        let mut seen = Vec::new();
        q.run(|q, at, gen| {
            seen.push((at, gen));
            if gen < 3 {
                q.schedule(at + Duration::days(10), 0, gen + 1);
            }
        });
        assert_eq!(
            seen,
            vec![(t(0), 0), (t(10), 1), (t(20), 2), (t(30), 3)]
        );
    }

    #[test]
    fn events_scheduled_in_the_past_are_delivered_late_not_backwards() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 0, "first");
        q.pop_next();
        // rescheduling into the past must not rewind the clock
        q.schedule(t(2), 0, "late");
        let (at, e) = q.pop_next().unwrap();
        assert_eq!(e, "late");
        assert_eq!(at, t(5), "overdue events run at the clock, not in the past");
        assert_eq!(q.now(), Some(t(5)));
    }

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn interleaving_is_deterministic() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                q.schedule(t((i * 7 % 13) as i64), (i % 3) as u8, i);
            }
            let mut order = Vec::new();
            while let Some((_, e)) = q.pop_next() {
                order.push(e);
            }
            order
        };
        assert_eq!(build(), build());
    }
}
