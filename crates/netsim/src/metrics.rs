//! Lightweight instrumentation counters.
//!
//! IABot's misclassifications exist because measurement has a *cost*: §4.1's
//! timeouts trade coverage for throughput, and the paper's implications ask
//! whether that tradeoff is "worth revisiting". These counters make the cost
//! side observable: how many requests the live web answered, how many index
//! rows a CDX scan touched, how many availability lookups a bot issued.
//!
//! Counters are atomic so `&self` methods (the whole `Network` trait) can
//! increment them; relaxed ordering suffices — they are statistics, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

/// Counters for a network-like component.
#[derive(Debug, Default, Clone)]
pub struct NetMetrics {
    /// Requests that reached the component.
    pub requests: Counter,
    /// Transport-level failures (DNS, connect timeouts).
    pub transport_failures: Counter,
    /// Responses by status family.
    pub responses_2xx: Counter,
    pub responses_3xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
}

impl NetMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a single-hop outcome.
    pub fn record(&self, outcome: &Result<crate::http::Response, crate::error::FetchError>) {
        self.requests.incr();
        match outcome {
            Err(_) => self.transport_failures.incr(),
            Ok(resp) => match resp.status.as_u16() / 100 {
                2 => self.responses_2xx.incr(),
                3 => self.responses_3xx.incr(),
                4 => self.responses_4xx.incr(),
                5 => self.responses_5xx.incr(),
                _ => {}
            },
        }
    }

    /// Freeze the current counter values into a plain-value snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.get(),
            transport_failures: self.transport_failures.get(),
            responses_2xx: self.responses_2xx.get(),
            responses_3xx: self.responses_3xx.get(),
            responses_4xx: self.responses_4xx.get(),
            responses_5xx: self.responses_5xx.get(),
        }
    }

    /// Add a snapshot's counts onto these counters — e.g. folding a
    /// per-worker metrics set into a shared one after a parallel run. Safe
    /// against double-counting because a snapshot is a frozen value: merging
    /// it twice is visible to the caller, not a race.
    pub fn merge(&self, snap: &MetricsSnapshot) {
        self.requests.add(snap.requests);
        self.transport_failures.add(snap.transport_failures);
        self.responses_2xx.add(snap.responses_2xx);
        self.responses_3xx.add(snap.responses_3xx);
        self.responses_4xx.add(snap.responses_4xx);
        self.responses_5xx.add(snap.responses_5xx);
    }

    /// One-line render for reports.
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} transport failures; {}/{}/{}/{} by 2xx/3xx/4xx/5xx)",
            self.requests.get(),
            self.transport_failures.get(),
            self.responses_2xx.get(),
            self.responses_3xx.get(),
            self.responses_4xx.get(),
            self.responses_5xx.get(),
        )
    }
}

/// A frozen copy of a [`NetMetrics`] counter set: plain values, comparable
/// and subtractable. The pipeline snapshots before/after a study to report
/// measurement cost without resetting shared counters mid-run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub requests: u64,
    pub transport_failures: u64,
    pub responses_2xx: u64,
    pub responses_3xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
}

impl MetricsSnapshot {
    /// Counts accumulated since `earlier` (saturating, so a reset between
    /// snapshots degrades to zero instead of wrapping).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            transport_failures: self
                .transport_failures
                .saturating_sub(earlier.transport_failures),
            responses_2xx: self.responses_2xx.saturating_sub(earlier.responses_2xx),
            responses_3xx: self.responses_3xx.saturating_sub(earlier.responses_3xx),
            responses_4xx: self.responses_4xx.saturating_sub(earlier.responses_4xx),
            responses_5xx: self.responses_5xx.saturating_sub(earlier.responses_5xx),
        }
    }

    /// One-line render, same shape as [`NetMetrics::summary`].
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} transport failures; {}/{}/{}/{} by 2xx/3xx/4xx/5xx)",
            self.requests,
            self.transport_failures,
            self.responses_2xx,
            self.responses_3xx,
            self.responses_4xx,
            self.responses_5xx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FetchError;
    use crate::http::{Response, StatusCode};

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn record_classifies() {
        let m = NetMetrics::new();
        m.record(&Ok(Response::ok("x".into())));
        m.record(&Ok(Response::status_only(StatusCode::NOT_FOUND)));
        m.record(&Ok(Response::status_only(StatusCode::SERVICE_UNAVAILABLE)));
        m.record(&Ok(Response::redirect(
            StatusCode::FOUND,
            permadead_url::Url::parse("http://e.org/").unwrap(),
        )));
        m.record(&Err(FetchError::ConnectTimeout));
        assert_eq!(m.requests.get(), 5);
        assert_eq!(m.responses_2xx.get(), 1);
        assert_eq!(m.responses_3xx.get(), 1);
        assert_eq!(m.responses_4xx.get(), 1);
        assert_eq!(m.responses_5xx.get(), 1);
        assert_eq!(m.transport_failures.get(), 1);
        assert!(m.summary().contains("5 requests"));
    }

    #[test]
    fn snapshot_diff_and_merge_roundtrip() {
        let m = NetMetrics::new();
        m.record(&Ok(Response::ok("x".into())));
        let before = m.snapshot();
        m.record(&Ok(Response::status_only(StatusCode::NOT_FOUND)));
        m.record(&Err(FetchError::ConnectTimeout));
        let after = m.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.requests, 2);
        assert_eq!(delta.responses_4xx, 1);
        assert_eq!(delta.transport_failures, 1);
        assert_eq!(delta.responses_2xx, 0);

        // merging a worker's delta into a fresh aggregate adds exactly once
        let agg = NetMetrics::new();
        agg.merge(&delta);
        agg.merge(&before);
        assert_eq!(agg.snapshot(), after);
    }

    #[test]
    fn diff_saturates_after_reset() {
        let m = NetMetrics::new();
        m.record(&Ok(Response::ok("x".into())));
        let before = m.snapshot();
        m.requests.reset();
        let after = m.snapshot();
        assert_eq!(after.diff(&before).requests, 0);
    }

    #[test]
    fn diff_saturates_per_field() {
        // each field saturates independently: a later snapshot that is
        // behind on some fields and ahead on others must not wrap
        let earlier = MetricsSnapshot {
            requests: 10,
            transport_failures: 5,
            responses_2xx: 4,
            responses_3xx: 3,
            responses_4xx: 2,
            responses_5xx: 1,
        };
        let later = MetricsSnapshot {
            requests: 12,
            transport_failures: 0, // behind (reset between snapshots)
            responses_2xx: 4,
            responses_3xx: 0, // behind
            responses_4xx: 7,
            responses_5xx: 0, // behind
        };
        let d = later.diff(&earlier);
        assert_eq!(d.requests, 2);
        assert_eq!(d.transport_failures, 0);
        assert_eq!(d.responses_2xx, 0);
        assert_eq!(d.responses_3xx, 0);
        assert_eq!(d.responses_4xx, 5);
        assert_eq!(d.responses_5xx, 0);
    }

    #[test]
    fn diff_of_self_is_zero() {
        let m = NetMetrics::new();
        m.record(&Ok(Response::ok("x".into())));
        let snap = m.snapshot();
        assert_eq!(snap.diff(&snap), MetricsSnapshot::default());
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        let parts = [
            MetricsSnapshot {
                requests: 3,
                responses_2xx: 2,
                responses_4xx: 1,
                ..Default::default()
            },
            MetricsSnapshot {
                requests: 5,
                transport_failures: 4,
                responses_5xx: 1,
                ..Default::default()
            },
            MetricsSnapshot {
                requests: 7,
                responses_3xx: 6,
                responses_2xx: 1,
                ..Default::default()
            },
        ];
        // fold in every grouping/order a parallel run could produce
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 0, 2]];
        let mut results = Vec::new();
        for order in orders {
            let agg = NetMetrics::new();
            for &i in &order {
                agg.merge(&parts[i]);
            }
            results.push(agg.snapshot());
        }
        // and a pre-merged grouping: (a+b) then c
        let ab = NetMetrics::new();
        ab.merge(&parts[0]);
        ab.merge(&parts[1]);
        let grouped = NetMetrics::new();
        grouped.merge(&ab.snapshot());
        grouped.merge(&parts[2]);
        results.push(grouped.snapshot());

        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
        assert_eq!(results[0].requests, 15);
        assert_eq!(results[0].responses_2xx, 3);
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::default();
        c.add(7);
        let snap = c.clone();
        c.add(1);
        assert_eq!(snap.get(), 7);
        assert_eq!(c.get(), 8);
    }
}
