//! Lightweight instrumentation counters.
//!
//! IABot's misclassifications exist because measurement has a *cost*: §4.1's
//! timeouts trade coverage for throughput, and the paper's implications ask
//! whether that tradeoff is "worth revisiting". These counters make the cost
//! side observable: how many requests the live web answered, how many index
//! rows a CDX scan touched, how many availability lookups a bot issued.
//!
//! Counters are atomic so `&self` methods (the whole `Network` trait) can
//! increment them; relaxed ordering suffices — they are statistics, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

/// Counters for a network-like component.
#[derive(Debug, Default, Clone)]
pub struct NetMetrics {
    /// Requests that reached the component.
    pub requests: Counter,
    /// Transport-level failures (DNS, connect timeouts).
    pub transport_failures: Counter,
    /// Responses by status family.
    pub responses_2xx: Counter,
    pub responses_3xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
}

impl NetMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a single-hop outcome.
    pub fn record(&self, outcome: &Result<crate::http::Response, crate::error::FetchError>) {
        self.requests.incr();
        match outcome {
            Err(_) => self.transport_failures.incr(),
            Ok(resp) => match resp.status.as_u16() / 100 {
                2 => self.responses_2xx.incr(),
                3 => self.responses_3xx.incr(),
                4 => self.responses_4xx.incr(),
                5 => self.responses_5xx.incr(),
                _ => {}
            },
        }
    }

    /// One-line render for reports.
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} transport failures; {}/{}/{}/{} by 2xx/3xx/4xx/5xx)",
            self.requests.get(),
            self.transport_failures.get(),
            self.responses_2xx.get(),
            self.responses_3xx.get(),
            self.responses_4xx.get(),
            self.responses_5xx.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FetchError;
    use crate::http::{Response, StatusCode};

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn record_classifies() {
        let m = NetMetrics::new();
        m.record(&Ok(Response::ok("x".into())));
        m.record(&Ok(Response::status_only(StatusCode::NOT_FOUND)));
        m.record(&Ok(Response::status_only(StatusCode::SERVICE_UNAVAILABLE)));
        m.record(&Ok(Response::redirect(
            StatusCode::FOUND,
            permadead_url::Url::parse("http://e.org/").unwrap(),
        )));
        m.record(&Err(FetchError::ConnectTimeout));
        assert_eq!(m.requests.get(), 5);
        assert_eq!(m.responses_2xx.get(), 1);
        assert_eq!(m.responses_3xx.get(), 1);
        assert_eq!(m.responses_4xx.get(), 1);
        assert_eq!(m.responses_5xx.get(), 1);
        assert_eq!(m.transport_failures.get(), 1);
        assert!(m.summary().contains("5 requests"));
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::default();
        c.add(7);
        let snap = c.clone();
        c.add(1);
        assert_eq!(snap.get(), 7);
        assert_eq!(c.get(), 8);
    }
}
