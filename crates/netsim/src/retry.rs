//! Deterministic retry with exponential backoff — the §4.1 counterfactual.
//!
//! IABot issues exactly one availability lookup per link and treats a
//! client-side timeout as "never archived"; the paper shows 11% of links
//! with usable 200-status copies are misclassified that way. A retry layer
//! is the obvious fix, and because transient failures here are *simulated*
//! (latency draws, per-day fault rolls), a retry schedule can be replayed
//! bit-for-bit: same `(seed, policy, fault profile)` ⇒ same attempt trace.
//!
//! Retryability is classified per cause. Transient failures — connect
//! timeouts, 503s, 429s, the availability API's client-side timeout — are
//! worth another attempt. Permanent answers — DNS `NXDOMAIN`, 404, a
//! vantage geo-block — are terminal: retrying cannot change them, and a
//! correct bot should not burn budget trying.

use crate::dns::DnsError;
use crate::error::FetchError;
use crate::http::StatusCode;
use crate::latency::Millis;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Why an attempt failed, at the granularity retry decisions are made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryCause {
    /// Connection setup or response never completed (live web).
    ConnectTimeout,
    /// 503 Service Unavailable.
    Unavailable,
    /// 429 Too Many Requests.
    RateLimited,
    /// The availability API missed the client-side timeout (§4.1).
    AvailabilityTimeout,
    /// DNS SERVFAIL or resolver timeout — the resolver, not the zone.
    DnsTransient,
    /// DNS NXDOMAIN: the name does not exist. Terminal.
    DnsNxDomain,
    /// 404 Not Found: a definitive answer. Terminal.
    NotFound,
    /// 403 at this vantage. Retrying from the same vantage is futile.
    GeoBlocked,
    /// Anything else (other status codes, redirect pathologies). Terminal.
    Other,
}

impl RetryCause {
    /// Is another attempt worth scheduling for this cause?
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            RetryCause::ConnectTimeout
                | RetryCause::Unavailable
                | RetryCause::RateLimited
                | RetryCause::AvailabilityTimeout
                | RetryCause::DnsTransient
        )
    }

    /// Prometheus-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            RetryCause::ConnectTimeout => "connect-timeout",
            RetryCause::Unavailable => "unavailable",
            RetryCause::RateLimited => "rate-limited",
            RetryCause::AvailabilityTimeout => "availability-timeout",
            RetryCause::DnsTransient => "dns-transient",
            RetryCause::DnsNxDomain => "dns-nxdomain",
            RetryCause::NotFound => "not-found",
            RetryCause::GeoBlocked => "geo-blocked",
            RetryCause::Other => "other",
        }
    }

    /// Classify a completed fetch outcome. `None` means the fetch produced
    /// an answer no retry decision applies to (2xx).
    pub fn classify_fetch(outcome: &Result<StatusCode, FetchError>) -> Option<RetryCause> {
        match outcome {
            Ok(code) if code.is_success() => None,
            Ok(code) if *code == StatusCode::NOT_FOUND => Some(RetryCause::NotFound),
            Ok(code) if *code == StatusCode::FORBIDDEN => Some(RetryCause::GeoBlocked),
            Ok(code) if *code == StatusCode::TOO_MANY_REQUESTS => Some(RetryCause::RateLimited),
            Ok(code) if *code == StatusCode::SERVICE_UNAVAILABLE => Some(RetryCause::Unavailable),
            Ok(_) => Some(RetryCause::Other),
            Err(FetchError::ConnectTimeout) | Err(FetchError::ResponseTimeout) => {
                Some(RetryCause::ConnectTimeout)
            }
            Err(FetchError::Dns(DnsError::NxDomain)) => Some(RetryCause::DnsNxDomain),
            Err(FetchError::Dns(_)) => Some(RetryCause::DnsTransient),
            Err(FetchError::TooManyRedirects) | Err(FetchError::MalformedRedirect) => {
                Some(RetryCause::Other)
            }
        }
    }
}

/// Per-cause counters of *retries scheduled* (a failure that led to another
/// attempt), plus how many runs gave up with a retryable failure still in
/// hand. These flow into `StageStats` and the serve `/metrics` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCounts {
    pub connect_timeout: u64,
    pub unavailable: u64,
    pub rate_limited: u64,
    pub availability_timeout: u64,
    pub dns_transient: u64,
    pub other: u64,
    /// Runs that stopped (attempts or budget spent) while the last failure
    /// was still retryable.
    pub exhausted: u64,
}

impl RetryCounts {
    pub fn record(&mut self, cause: RetryCause) {
        match cause {
            RetryCause::ConnectTimeout => self.connect_timeout += 1,
            RetryCause::Unavailable => self.unavailable += 1,
            RetryCause::RateLimited => self.rate_limited += 1,
            RetryCause::AvailabilityTimeout => self.availability_timeout += 1,
            RetryCause::DnsTransient => self.dns_transient += 1,
            _ => self.other += 1,
        }
    }

    pub fn add(&mut self, other: RetryCounts) {
        self.connect_timeout += other.connect_timeout;
        self.unavailable += other.unavailable;
        self.rate_limited += other.rate_limited;
        self.availability_timeout += other.availability_timeout;
        self.dns_transient += other.dns_transient;
        self.other += other.other;
        self.exhausted += other.exhausted;
    }

    /// `self - earlier`, fieldwise. Callers snapshot before/after a stage to
    /// attribute retries to it.
    pub fn diff(self, earlier: RetryCounts) -> RetryCounts {
        RetryCounts {
            connect_timeout: self.connect_timeout - earlier.connect_timeout,
            unavailable: self.unavailable - earlier.unavailable,
            rate_limited: self.rate_limited - earlier.rate_limited,
            availability_timeout: self.availability_timeout - earlier.availability_timeout,
            dns_transient: self.dns_transient - earlier.dns_transient,
            other: self.other - earlier.other,
            exhausted: self.exhausted - earlier.exhausted,
        }
    }

    /// Retries scheduled, summed over causes (excludes `exhausted`).
    pub fn total(&self) -> u64 {
        self.connect_timeout
            + self.unavailable
            + self.rate_limited
            + self.availability_timeout
            + self.dns_transient
            + self.other
    }

    pub fn is_zero(&self) -> bool {
        self.total() == 0 && self.exhausted == 0
    }

    /// `(label, count)` pairs in a stable order, for metric exposition.
    pub fn per_cause(&self) -> [(&'static str, u64); 6] {
        [
            ("connect-timeout", self.connect_timeout),
            ("unavailable", self.unavailable),
            ("rate-limited", self.rate_limited),
            ("availability-timeout", self.availability_timeout),
            ("dns-transient", self.dns_transient),
            ("other", self.other),
        ]
    }
}

/// A deterministic retry schedule. `Copy` so it can ride inside the
/// pipeline's shared `StudyEnv` without lifetime plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first. `1` = IABot's behaviour: no
    /// retries at all, and the driver is bit-identical to a bare call.
    pub max_attempts: u32,
    /// Delay before the first retry, ms (simulated — no wall clock).
    pub base_backoff_ms: Millis,
    /// Exponential growth factor per retry.
    pub backoff_multiplier: f64,
    /// Backoff ceiling, ms.
    pub max_backoff_ms: Millis,
    /// Jitter as a ± fraction of the computed backoff, drawn from a rng
    /// seeded by `(seed, key, attempt)` — deterministic per schedule.
    pub jitter: f64,
    /// Cumulative budget over all backoff delays; a retry whose delay would
    /// overrun it is not scheduled. `None` = unbounded.
    pub budget_ms: Option<Millis>,
    /// Honor a server-provided Retry-After hint: the scheduled delay is
    /// `max(computed backoff, hint)`.
    pub honor_retry_after: bool,
    /// Seed for jitter draws.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::single()
    }
}

impl RetryPolicy {
    /// IABot's production behaviour: one attempt, no retry machinery.
    pub fn single() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            backoff_multiplier: 1.0,
            max_backoff_ms: 0,
            jitter: 0.0,
            budget_ms: None,
            honor_retry_after: false,
            seed: 0,
        }
    }

    /// A sensible retrying bot: exponential 500ms → 8s backoff with ±20%
    /// jitter, Retry-After honored, no budget until one is set.
    pub fn standard(max_attempts: u32, seed: u64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff_ms: 500,
            backoff_multiplier: 2.0,
            max_backoff_ms: 8_000,
            jitter: 0.2,
            budget_ms: None,
            honor_retry_after: true,
            seed,
        }
    }

    pub fn with_budget_ms(mut self, budget: Millis) -> Self {
        self.budget_ms = Some(budget);
        self
    }

    pub fn with_backoff(mut self, base_ms: Millis, multiplier: f64, max_ms: Millis) -> Self {
        self.base_backoff_ms = base_ms;
        self.backoff_multiplier = multiplier;
        self.max_backoff_ms = max_ms;
        self
    }

    /// Does this policy ever retry?
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff scheduled after failed attempt `attempt` (0-based), before
    /// any Retry-After adjustment. Pure in `(policy, key, attempt)`.
    pub fn backoff_ms(&self, key: &str, attempt: u32) -> Millis {
        let exp = self.base_backoff_ms as f64 * self.backoff_multiplier.powi(attempt as i32);
        let capped = exp.min(self.max_backoff_ms as f64);
        if self.jitter <= 0.0 {
            return capped.round() as Millis;
        }
        let h = self.seed
            ^ fnv1a(key.as_bytes())
            ^ (attempt as u64).wrapping_mul(0xD1B54A32D192ED03);
        let mut rng = SmallRng::seed_from_u64(h);
        let factor = rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter);
        (capped * factor).round().max(0.0) as Millis
    }
}

/// One failed attempt, as the operation reports it to the driver.
#[derive(Debug, Clone)]
pub struct AttemptFailure<E> {
    pub cause: RetryCause,
    /// Server-provided Retry-After hint, if the response carried one.
    pub retry_after_ms: Option<Millis>,
    /// The underlying error, returned to the caller if the run gives up.
    pub error: E,
}

/// One attempt in a completed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 0-based attempt index.
    pub number: u32,
    /// Offset of this attempt from the first, in simulated ms of backoff.
    pub at_ms: Millis,
    /// Why it failed; `None` = it succeeded.
    pub cause: Option<RetryCause>,
    /// Delay scheduled after this attempt (`None` when no retry followed).
    pub backoff_ms: Option<Millis>,
}

/// The full record of one retry schedule: every attempt, in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RetryOutcome {
    pub attempts: Vec<Attempt>,
    /// Total simulated backoff spent, ms.
    pub elapsed_ms: Millis,
    /// Gave up with a retryable failure still in hand (attempts or budget).
    pub exhausted: bool,
    /// Specifically: the next retry's delay would have overrun the budget.
    pub budget_exhausted: bool,
    /// Per-cause retry counters for this run.
    pub counts: RetryCounts,
}

impl RetryOutcome {
    /// Attempts actually issued.
    pub fn tries(&self) -> u32 {
        self.attempts.len() as u32
    }
}

impl RetryPolicy {
    /// Drive `op` under this policy. `op` receives the 0-based attempt index
    /// (callers derive per-attempt nonces from it so each attempt is an
    /// independent draw) and reports success or an [`AttemptFailure`].
    ///
    /// With `max_attempts == 1` this calls `op(0)` exactly once and consumes
    /// no randomness — bit-identical to not using the driver at all.
    pub fn run<T, E>(
        &self,
        key: &str,
        mut op: impl FnMut(u32) -> Result<T, AttemptFailure<E>>,
    ) -> (Result<T, E>, RetryOutcome) {
        let max = self.max_attempts.max(1);
        let mut outcome = RetryOutcome::default();
        let mut elapsed: Millis = 0;
        let mut attempt: u32 = 0;
        loop {
            match op(attempt) {
                Ok(value) => {
                    outcome.attempts.push(Attempt {
                        number: attempt,
                        at_ms: elapsed,
                        cause: None,
                        backoff_ms: None,
                    });
                    outcome.elapsed_ms = elapsed;
                    return (Ok(value), outcome);
                }
                Err(failure) => {
                    let cause = failure.cause;
                    let record = |outcome: &mut RetryOutcome, backoff: Option<Millis>| {
                        outcome.attempts.push(Attempt {
                            number: attempt,
                            at_ms: elapsed,
                            cause: Some(cause),
                            backoff_ms: backoff,
                        });
                        outcome.elapsed_ms = elapsed;
                    };
                    if !cause.is_retryable() {
                        record(&mut outcome, None);
                        return (Err(failure.error), outcome);
                    }
                    if attempt + 1 >= max {
                        // a single-attempt policy has no retry schedule to
                        // exhaust: counting it would make the default
                        // (retry-less) pipeline report nonzero retry state
                        if max > 1 {
                            outcome.exhausted = true;
                            outcome.counts.exhausted += 1;
                        }
                        record(&mut outcome, None);
                        return (Err(failure.error), outcome);
                    }
                    let mut delay = self.backoff_ms(key, attempt);
                    if self.honor_retry_after {
                        if let Some(hint) = failure.retry_after_ms {
                            delay = delay.max(hint);
                        }
                    }
                    if let Some(budget) = self.budget_ms {
                        if elapsed + delay > budget {
                            outcome.exhausted = true;
                            outcome.budget_exhausted = true;
                            outcome.counts.exhausted += 1;
                            record(&mut outcome, None);
                            return (Err(failure.error), outcome);
                        }
                    }
                    outcome.counts.record(cause);
                    record(&mut outcome, Some(delay));
                    elapsed += delay;
                    attempt += 1;
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultProfile};
    use crate::http::Vantage;
    use crate::time::SimTime;

    fn fail(cause: RetryCause) -> AttemptFailure<&'static str> {
        AttemptFailure {
            cause,
            retry_after_ms: None,
            error: "boom",
        }
    }

    #[test]
    fn single_attempt_calls_op_once() {
        let policy = RetryPolicy::single();
        let mut calls = 0;
        let (res, outcome) = policy.run::<(), _>("k", |attempt| {
            calls += 1;
            assert_eq!(attempt, 0);
            Err(fail(RetryCause::ConnectTimeout))
        });
        assert_eq!(calls, 1);
        assert!(res.is_err());
        assert_eq!(outcome.tries(), 1);
        // a failed single attempt is not "exhaustion": nothing was retried,
        // and the default pipeline must report zero retry state
        assert!(!outcome.exhausted);
        assert_eq!(outcome.counts.total(), 0, "no retry was ever scheduled");
        assert_eq!(outcome.counts.exhausted, 0);
        assert!(outcome.counts.is_zero());
    }

    #[test]
    fn retryable_causes_retry_until_success() {
        let policy = RetryPolicy::standard(5, 42);
        let (res, outcome) = policy.run::<u32, &str>("k", |attempt| {
            if attempt < 2 {
                Err(fail(RetryCause::Unavailable))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(res, Ok(2));
        assert_eq!(outcome.tries(), 3);
        assert_eq!(outcome.counts.unavailable, 2);
        assert!(!outcome.exhausted);
        // the trace records causes and backoffs in order
        assert_eq!(outcome.attempts[0].cause, Some(RetryCause::Unavailable));
        assert!(outcome.attempts[0].backoff_ms.is_some());
        assert_eq!(outcome.attempts[2].cause, None);
        assert_eq!(outcome.attempts[2].backoff_ms, None);
        // elapsed is the sum of scheduled backoffs
        let scheduled: Millis = outcome.attempts.iter().filter_map(|a| a.backoff_ms).sum();
        assert_eq!(outcome.elapsed_ms, scheduled);
    }

    #[test]
    fn terminal_causes_never_retry() {
        for cause in [
            RetryCause::DnsNxDomain,
            RetryCause::NotFound,
            RetryCause::GeoBlocked,
            RetryCause::Other,
        ] {
            let policy = RetryPolicy::standard(10, 1);
            let mut calls = 0;
            let (res, outcome) = policy.run::<(), _>("k", |_| {
                calls += 1;
                Err(fail(cause))
            });
            assert_eq!(calls, 1, "{cause:?} must not be retried");
            assert!(res.is_err());
            assert!(!outcome.exhausted, "{cause:?} is a final answer, not exhaustion");
            assert_eq!(outcome.counts.total(), 0);
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard(8, 7)
        };
        assert_eq!(policy.backoff_ms("k", 0), 500);
        assert_eq!(policy.backoff_ms("k", 1), 1000);
        assert_eq!(policy.backoff_ms("k", 2), 2000);
        assert_eq!(policy.backoff_ms("k", 10), 8_000, "capped at max_backoff_ms");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::standard(8, 99);
        for attempt in 0..6 {
            let a = policy.backoff_ms("key", attempt);
            let b = policy.backoff_ms("key", attempt);
            assert_eq!(a, b);
            let nominal = RetryPolicy {
                jitter: 0.0,
                ..policy
            }
            .backoff_ms("key", attempt);
            let lo = (nominal as f64 * 0.8).floor() as Millis;
            let hi = (nominal as f64 * 1.2).ceil() as Millis;
            assert!((lo..=hi).contains(&a), "attempt {attempt}: {a} outside [{lo},{hi}]");
        }
        // different keys draw different jitter somewhere
        assert!((0..16).any(|n| policy.backoff_ms("key-a", n) != policy.backoff_ms("key-b", n)));
    }

    #[test]
    fn budget_stops_the_schedule() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard(10, 1)
        }
        .with_budget_ms(1_200);
        // backoffs would be 500, 1000, ... — the second retry (cumulative
        // 1500ms) overruns the 1200ms budget
        let (res, outcome) = policy.run::<(), _>("k", |_| Err(fail(RetryCause::ConnectTimeout)));
        assert!(res.is_err());
        assert_eq!(outcome.tries(), 2);
        assert!(outcome.budget_exhausted);
        assert!(outcome.exhausted);
        assert_eq!(outcome.elapsed_ms, 500);
        assert_eq!(outcome.counts.connect_timeout, 1);
    }

    #[test]
    fn retry_after_hint_is_honored() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard(3, 1)
        };
        let (_, outcome) = policy.run::<(), _>("k", |_| {
            Err(AttemptFailure {
                cause: RetryCause::RateLimited,
                retry_after_ms: Some(5_000),
                error: "rl",
            })
        });
        // computed backoff is 500/1000ms but the hint stretches each wait
        assert_eq!(outcome.attempts[0].backoff_ms, Some(5_000));
        assert_eq!(outcome.attempts[1].backoff_ms, Some(5_000));

        let deaf = RetryPolicy {
            honor_retry_after: false,
            ..policy
        };
        let (_, outcome) = deaf.run::<(), _>("k", |_| {
            Err(AttemptFailure {
                cause: RetryCause::RateLimited,
                retry_after_ms: Some(5_000),
                error: "rl",
            })
        });
        assert_eq!(outcome.attempts[0].backoff_ms, Some(500));
    }

    #[test]
    fn classify_fetch_covers_the_taxonomy() {
        use RetryCause::*;
        assert_eq!(RetryCause::classify_fetch(&Ok(StatusCode::OK)), None);
        assert_eq!(RetryCause::classify_fetch(&Ok(StatusCode(204))), None);
        assert_eq!(RetryCause::classify_fetch(&Ok(StatusCode::NOT_FOUND)), Some(NotFound));
        assert_eq!(RetryCause::classify_fetch(&Ok(StatusCode::FORBIDDEN)), Some(GeoBlocked));
        assert_eq!(
            RetryCause::classify_fetch(&Ok(StatusCode::TOO_MANY_REQUESTS)),
            Some(RateLimited)
        );
        assert_eq!(
            RetryCause::classify_fetch(&Ok(StatusCode::SERVICE_UNAVAILABLE)),
            Some(Unavailable)
        );
        assert_eq!(RetryCause::classify_fetch(&Ok(StatusCode::GONE)), Some(Other));
        assert_eq!(
            RetryCause::classify_fetch(&Err(FetchError::ConnectTimeout)),
            Some(ConnectTimeout)
        );
        assert_eq!(
            RetryCause::classify_fetch(&Err(FetchError::ResponseTimeout)),
            Some(ConnectTimeout)
        );
        assert_eq!(
            RetryCause::classify_fetch(&Err(FetchError::Dns(DnsError::NxDomain))),
            Some(DnsNxDomain)
        );
        assert_eq!(
            RetryCause::classify_fetch(&Err(FetchError::Dns(DnsError::ServFail))),
            Some(DnsTransient)
        );
        assert_eq!(
            RetryCause::classify_fetch(&Err(FetchError::TooManyRedirects)),
            Some(Other)
        );
        // the retryable set is exactly the transient causes
        for (cause, retryable) in [
            (ConnectTimeout, true),
            (Unavailable, true),
            (RateLimited, true),
            (AvailabilityTimeout, true),
            (DnsTransient, true),
            (DnsNxDomain, false),
            (NotFound, false),
            (GeoBlocked, false),
            (Other, false),
        ] {
            assert_eq!(cause.is_retryable(), retryable, "{cause:?}");
        }
    }

    #[test]
    fn counts_roundtrip_add_and_diff() {
        let mut a = RetryCounts::default();
        a.record(RetryCause::ConnectTimeout);
        a.record(RetryCause::RateLimited);
        a.record(RetryCause::AvailabilityTimeout);
        let before = a;
        a.record(RetryCause::ConnectTimeout);
        a.exhausted += 1;
        let delta = a.diff(before);
        assert_eq!(delta.connect_timeout, 1);
        assert_eq!(delta.rate_limited, 0);
        assert_eq!(delta.exhausted, 1);
        let mut sum = before;
        sum.add(delta);
        assert_eq!(sum, a);
        assert_eq!(a.total(), 4);
        assert!(!a.is_zero());
        assert!(RetryCounts::default().is_zero());
        let labels: Vec<&str> = a.per_cause().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            [
                "connect-timeout",
                "unavailable",
                "rate-limited",
                "availability-timeout",
                "dns-transient",
                "other"
            ]
        );
    }

    /// The tentpole determinism property: any `(seed, policy, fault
    /// profile)` replays to an identical attempt trace.
    mod replay {
        use super::*;
        use proptest::prelude::*;

        /// Drive the policy against a fault profile the way the live-check
        /// layer does: each attempt is an independent per-attempt fault roll.
        fn drive(
            policy: &RetryPolicy,
            profile: &FaultProfile,
            url: &str,
            t: SimTime,
        ) -> RetryOutcome {
            let (_, outcome) = policy.run::<(), ()>(url, |attempt| {
                match profile.check_attempt(url, Vantage::UsEducation, t, attempt) {
                    None => Ok(()),
                    Some(Fault::ConnectTimeout) => Err(AttemptFailure {
                        cause: RetryCause::ConnectTimeout,
                        retry_after_ms: None,
                        error: (),
                    }),
                    Some(Fault::Unavailable) => Err(AttemptFailure {
                        cause: RetryCause::Unavailable,
                        retry_after_ms: None,
                        error: (),
                    }),
                    Some(Fault::RateLimited) => Err(AttemptFailure {
                        cause: RetryCause::RateLimited,
                        retry_after_ms: Some(1_000),
                        error: (),
                    }),
                    Some(Fault::GeoBlocked) => Err(AttemptFailure {
                        cause: RetryCause::GeoBlocked,
                        retry_after_ms: None,
                        error: (),
                    }),
                }
            });
            outcome
        }

        proptest! {
            #[test]
            fn same_inputs_same_attempt_trace(
                seed in 0u64..1_000,
                fault_seed in 0u64..1_000,
                max_attempts in 1u32..8,
                timeout_p in 0u32..=10,
                unavailable_p in 0u32..=10,
                budget in proptest::option::of(0u64..20_000),
                day in 0i64..365,
            ) {
                let policy = {
                    let mut p = RetryPolicy::standard(max_attempts, seed);
                    if let Some(b) = budget {
                        p = p.with_budget_ms(b);
                    }
                    p
                };
                let profile = FaultProfile::none(fault_seed)
                    .with_timeouts(timeout_p as f64 / 10.0)
                    .with_unavailable(unavailable_p as f64 / 10.0);
                let t = SimTime::from_ymd(2022, 1, 1) + crate::time::Duration::days(day);
                let url = format!("http://replay.example/{seed}/{day}");
                let first = drive(&policy, &profile, &url, t);
                for _ in 0..3 {
                    let again = drive(&policy, &profile, &url, t);
                    prop_assert_eq!(&again, &first);
                }
                prop_assert!(first.tries() <= max_attempts);
            }
        }
    }
}
