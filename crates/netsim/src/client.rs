//! A redirect-following GET client over an abstract [`Network`].
//!
//! The pipeline, the bots, and the archive crawler all fetch through this
//! client. It records the *full hop chain*, because the paper's analyses need
//! both the initial status ("prior to all redirections") and the final one
//! ("after all redirections") — §2.4 defines the terms, §3 uses the final
//! status for Figure 4, and §4.2 reasons about the redirect target itself.

use crate::error::{FetchError, LiveStatus};
use crate::http::{Request, Response, StatusCode, Vantage};
use crate::latency::Millis;
use crate::time::SimTime;
use permadead_url::Url;

/// Anything that can answer one HTTP request without following redirects:
/// the live web (the `permadead-web` crate), or a replay of an archived snapshot.
///
/// `Sync` is a supertrait so the measurement pipeline can fan a dataset out
/// across worker threads that share one network — every implementation is a
/// pure function of (state, request time) plus atomic counters, so shared
/// access is safe by construction.
pub trait Network: Sync {
    /// Answer a single request at `req.time`, or fail at the transport layer.
    fn request(&self, req: &Request) -> Result<Response, FetchError>;
}

/// Convenience alias for what a network returns.
pub type ServeResult = Result<Response, FetchError>;

/// One step of a redirect chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    pub url: Url,
    pub status: StatusCode,
    /// Where this hop redirected, if it did.
    pub location: Option<Url>,
}

/// The complete record of a fetch: every hop plus the terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchRecord {
    /// The URL originally requested.
    pub requested: Url,
    /// When the fetch was issued.
    pub time: SimTime,
    /// Hops in order. Empty iff the very first request failed at transport
    /// level (DNS, connect timeout).
    pub hops: Vec<Hop>,
    /// Final status code, or the transport error that ended the fetch.
    pub outcome: Result<StatusCode, FetchError>,
    /// Body of the final response (empty on errors and redirect dead-ends).
    pub body: String,
    /// `Retry-After` carried by the final response, in ms — the back-pressure
    /// hint a retry policy honors. `None` on transport errors and redirect
    /// dead-ends (there is no final response to read it from).
    pub retry_after_ms: Option<Millis>,
}

impl FetchRecord {
    /// Status of the first response — the paper's "initial status code".
    pub fn initial_status(&self) -> Option<StatusCode> {
        self.hops.first().map(|h| h.status)
    }

    /// Status after all redirections — the paper's "final status code".
    pub fn final_status(&self) -> Option<StatusCode> {
        self.outcome.ok()
    }

    /// The URL that produced the final response (differs from `requested`
    /// when redirects were followed).
    pub fn final_url(&self) -> Option<&Url> {
        self.hops.last().map(|h| &h.url)
    }

    /// Did the fetch traverse at least one redirect? §3 reports that 79% of
    /// the genuinely-revived links redirect before their final 200.
    pub fn was_redirected(&self) -> bool {
        self.hops.iter().any(|h| h.status.is_redirect())
    }

    /// Figure 4 classification of this fetch.
    pub fn live_status(&self) -> LiveStatus {
        LiveStatus::classify(&self.outcome)
    }
}

/// The redirect-following client.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    /// Maximum redirect hops before giving up (curl's default is 50; bots
    /// use much less).
    pub max_redirects: usize,
    pub vantage: Vantage,
}

impl Default for Client {
    fn default() -> Self {
        Client {
            max_redirects: 10,
            vantage: Vantage::default(),
        }
    }
}

impl Client {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_vantage(mut self, vantage: Vantage) -> Self {
        self.vantage = vantage;
        self
    }

    pub fn with_max_redirects(mut self, n: usize) -> Self {
        self.max_redirects = n;
        self
    }

    /// Issue a GET for `url` at time `t`, following redirects. `?Sized` so
    /// callers holding a `&dyn Network` (the pipeline's shared environment)
    /// can fetch without knowing the concrete network type.
    pub fn get<N: Network + ?Sized>(&self, net: &N, url: &Url, t: SimTime) -> FetchRecord {
        self.get_attempt(net, url, t, 0)
    }

    /// Like [`get`](Self::get), tagging every hop's request as the
    /// `attempt`-th retry so the network's probabilistic faults re-roll.
    /// `attempt == 0` is bit-identical to `get`.
    pub fn get_attempt<N: Network + ?Sized>(
        &self,
        net: &N,
        url: &Url,
        t: SimTime,
        attempt: u32,
    ) -> FetchRecord {
        let requested = url.clone();
        let mut current = url.without_fragment();
        let mut hops: Vec<Hop> = Vec::new();

        loop {
            let req = Request::get(current.clone(), t)
                .from_vantage(self.vantage)
                .with_attempt(attempt);
            let resp = match net.request(&req) {
                Ok(r) => r,
                Err(e) => {
                    return FetchRecord {
                        requested,
                        time: t,
                        hops,
                        outcome: Err(e),
                        body: String::new(),
                        retry_after_ms: None,
                    };
                }
            };

            if resp.status.is_redirect() {
                let Some(loc) = resp.location.clone() else {
                    hops.push(Hop {
                        url: current,
                        status: resp.status,
                        location: None,
                    });
                    return FetchRecord {
                        requested,
                        time: t,
                        hops,
                        outcome: Err(FetchError::MalformedRedirect),
                        body: String::new(),
                        retry_after_ms: None,
                    };
                };
                hops.push(Hop {
                    url: current.clone(),
                    status: resp.status,
                    location: Some(loc.clone()),
                });
                // loop detection: a location we already visited, or hop
                // budget exhausted
                if hops.len() > self.max_redirects
                    || hops.iter().rev().skip(1).any(|h| h.url == loc)
                {
                    return FetchRecord {
                        requested,
                        time: t,
                        hops,
                        outcome: Err(FetchError::TooManyRedirects),
                        body: String::new(),
                        retry_after_ms: None,
                    };
                }
                current = loc.without_fragment();
                continue;
            }

            hops.push(Hop {
                url: current,
                status: resp.status,
                location: None,
            });
            return FetchRecord {
                requested,
                time: t,
                hops,
                outcome: Ok(resp.status),
                retry_after_ms: resp.retry_after_ms(),
                body: resp.body,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A table-driven network for tests: URL string → response.
    struct TableNet {
        table: HashMap<String, ServeResult>,
    }

    impl TableNet {
        fn new(entries: Vec<(&str, ServeResult)>) -> Self {
            TableNet {
                table: entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            }
        }
    }

    impl Network for TableNet {
        fn request(&self, req: &Request) -> ServeResult {
            self.table
                .get(&req.url.to_string())
                .cloned()
                .unwrap_or(Ok(Response::not_found()))
        }
    }

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(2022, 3, 1)
    }

    #[test]
    fn direct_200() {
        let net = TableNet::new(vec![(
            "http://e.org/a",
            Ok(Response::ok("hello".into())),
        )]);
        let rec = Client::new().get(&net, &u("http://e.org/a"), t0());
        assert_eq!(rec.outcome, Ok(StatusCode::OK));
        assert_eq!(rec.initial_status(), Some(StatusCode::OK));
        assert_eq!(rec.final_status(), Some(StatusCode::OK));
        assert!(!rec.was_redirected());
        assert_eq!(rec.body, "hello");
        assert_eq!(rec.live_status(), LiveStatus::Ok);
    }

    #[test]
    fn follows_redirect_chain() {
        let net = TableNet::new(vec![
            (
                "http://e.org/old",
                Ok(Response::redirect(StatusCode::MOVED_PERMANENTLY, u("http://e.org/mid"))),
            ),
            (
                "http://e.org/mid",
                Ok(Response::redirect(StatusCode::FOUND, u("http://e.org/new"))),
            ),
            ("http://e.org/new", Ok(Response::ok("final".into()))),
        ]);
        let rec = Client::new().get(&net, &u("http://e.org/old"), t0());
        assert_eq!(rec.hops.len(), 3);
        assert_eq!(rec.initial_status(), Some(StatusCode::MOVED_PERMANENTLY));
        assert_eq!(rec.final_status(), Some(StatusCode::OK));
        assert_eq!(rec.final_url().unwrap().to_string(), "http://e.org/new");
        assert!(rec.was_redirected());
        assert_eq!(rec.body, "final");
    }

    #[test]
    fn dns_failure_has_no_hops() {
        struct DeadNet;
        impl Network for DeadNet {
            fn request(&self, _req: &Request) -> ServeResult {
                Err(FetchError::Dns(crate::dns::DnsError::NxDomain))
            }
        }
        let rec = Client::new().get(&DeadNet, &u("http://gone.example/x"), t0());
        assert!(rec.hops.is_empty());
        assert_eq!(rec.live_status(), LiveStatus::DnsFailure);
        assert_eq!(rec.initial_status(), None);
    }

    #[test]
    fn redirect_loop_detected() {
        let net = TableNet::new(vec![
            (
                "http://e.org/a",
                Ok(Response::redirect(StatusCode::FOUND, u("http://e.org/b"))),
            ),
            (
                "http://e.org/b",
                Ok(Response::redirect(StatusCode::FOUND, u("http://e.org/a"))),
            ),
        ]);
        let rec = Client::new().get(&net, &u("http://e.org/a"), t0());
        assert_eq!(rec.outcome, Err(FetchError::TooManyRedirects));
        assert!(rec.hops.len() <= 3);
        assert_eq!(rec.live_status(), LiveStatus::Other);
    }

    #[test]
    fn hop_limit_enforced() {
        // a → a0 → a1 → ... unbounded chain
        let mut entries: Vec<(String, ServeResult)> = Vec::new();
        for i in 0..30 {
            entries.push((
                format!("http://e.org/{i}"),
                Ok(Response::redirect(
                    StatusCode::FOUND,
                    u(&format!("http://e.org/{}", i + 1)),
                )),
            ));
        }
        let net = TableNet {
            table: entries.into_iter().collect(),
        };
        let rec = Client::new().with_max_redirects(5).get(&net, &u("http://e.org/0"), t0());
        assert_eq!(rec.outcome, Err(FetchError::TooManyRedirects));
        assert_eq!(rec.hops.len(), 6);
    }

    #[test]
    fn malformed_redirect() {
        let net = TableNet::new(vec![(
            "http://e.org/a",
            Ok(Response::status_only(StatusCode::FOUND)),
        )]);
        let rec = Client::new().get(&net, &u("http://e.org/a"), t0());
        assert_eq!(rec.outcome, Err(FetchError::MalformedRedirect));
    }

    #[test]
    fn retry_after_from_final_response_is_captured() {
        // the hint rides the *final* response, even behind a redirect
        let net = TableNet::new(vec![
            (
                "http://e.org/old",
                Ok(Response::redirect(StatusCode::FOUND, u("http://e.org/busy"))),
            ),
            (
                "http://e.org/busy",
                Ok(Response::status_only(StatusCode::SERVICE_UNAVAILABLE)
                    .with_header("Retry-After", "3")),
            ),
        ]);
        let rec = Client::new().get(&net, &u("http://e.org/old"), t0());
        assert_eq!(rec.outcome, Ok(StatusCode::SERVICE_UNAVAILABLE));
        assert_eq!(rec.retry_after_ms, Some(3_000));
        // a plain 200 carries none
        let ok = Client::new().get(&net, &u("http://e.org/other"), t0());
        assert_eq!(ok.retry_after_ms, None);
    }

    #[test]
    fn fragment_stripped_before_request() {
        let net = TableNet::new(vec![(
            "http://e.org/a",
            Ok(Response::ok("x".into())),
        )]);
        let rec = Client::new().get(&net, &u("http://e.org/a#section"), t0());
        assert_eq!(rec.outcome, Ok(StatusCode::OK));
        // requested URL is preserved verbatim for reporting
        assert_eq!(rec.requested.to_string(), "http://e.org/a#section");
    }

    mod termination {
        //! The follower must terminate with bounded work on *any* redirect
        //! topology — chains, loops, self-loops, diamonds.
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn follower_always_terminates(
                // a random functional graph on N nodes: node i redirects to
                // edges[i], or terminates if edges[i] == i
                edges in proptest::collection::vec(0usize..12, 12),
                start in 0usize..12,
                max_redirects in 1usize..8,
            ) {
                let mut table = HashMap::new();
                for (i, &to) in edges.iter().enumerate() {
                    let url = format!("http://n.org/{i}");
                    let resp = if to == i {
                        Ok(Response::ok("terminal".into()))
                    } else {
                        Ok(Response::redirect(
                            StatusCode::FOUND,
                            u(&format!("http://n.org/{to}")),
                        ))
                    };
                    table.insert(url, resp);
                }
                let net = TableNet { table };
                let client = Client::new().with_max_redirects(max_redirects);
                let rec = client.get(&net, &u(&format!("http://n.org/{start}")), t0());
                // bounded hops, and a definite outcome either way
                prop_assert!(rec.hops.len() <= max_redirects + 1);
                match rec.outcome {
                    Ok(code) => prop_assert_eq!(code, StatusCode::OK),
                    Err(e) => prop_assert_eq!(e, FetchError::TooManyRedirects),
                }
            }
        }
    }

    #[test]
    fn cross_host_redirect() {
        // the paper's baku2017 → goalku example: redirect to an entirely
        // different site that answers 200
        let net = TableNet::new(vec![
            (
                "https://www.baku2017.com/en/results",
                Ok(Response::redirect(StatusCode::FOUND, u("https://www.goalku.com/id/soccer"))),
            ),
            (
                "https://www.goalku.com/id/soccer",
                Ok(Response::ok("unrelated sports site".into())),
            ),
        ]);
        let rec = Client::new().get(&net, &u("https://www.baku2017.com/en/results"), t0());
        assert_eq!(rec.final_status(), Some(StatusCode::OK));
        assert_eq!(rec.final_url().unwrap().host(), "www.goalku.com");
    }
}
