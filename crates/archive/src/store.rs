//! The snapshot store: a SURT-ordered index over every capture.
//!
//! Keys are `(surt, captured, seq)`; lexicographic order on SURT makes every
//! CDX query — exact URL, directory prefix, whole host — a contiguous range
//! scan, exactly the property the real CDX server's sorted files provide.

use crate::snapshot::Snapshot;
use permadead_net::SimTime;
use permadead_url::Url;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Ordered snapshot storage.
#[derive(Debug, Default)]
pub struct ArchiveStore {
    /// (surt, capture time, insertion seq) → snapshot. The seq breaks ties
    /// when the same URL is captured twice in one instant.
    index: BTreeMap<(String, SimTime, u64), Snapshot>,
    seq: u64,
    /// Index-access accounting: how many scans were issued and how many
    /// rows they touched (the cost axis of the paper's efficiency-vs-
    /// coverage tradeoff).
    pub lookups: permadead_net::metrics::Counter,
    pub rows_scanned: permadead_net::metrics::Counter,
}

impl ArchiveStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a capture.
    pub fn insert(&mut self, snapshot: Snapshot) {
        let key = (snapshot.surt.clone(), snapshot.captured, self.seq);
        self.seq += 1;
        self.index.insert(key, snapshot);
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Monotone insertion counter: bumps on every [`insert`](Self::insert)
    /// and never decreases, so derived state (e.g. an archive content
    /// digest) can be cached against it instead of rescanning the index.
    pub fn mutation_stamp(&self) -> u64 {
        self.seq
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All snapshots of exactly this URL, in capture order.
    pub fn snapshots_of(&self, url: &Url) -> Vec<&Snapshot> {
        let surt = permadead_url::surt(url);
        self.range_by_exact_surt(&surt).collect()
    }

    /// Snapshots of this URL captured in `[from, to)`.
    pub fn snapshots_of_between(
        &self,
        url: &Url,
        from: SimTime,
        to: SimTime,
    ) -> Vec<&Snapshot> {
        self.snapshots_of(url)
            .into_iter()
            .filter(|s| s.captured >= from && s.captured < to)
            .collect()
    }

    /// The earliest capture of this URL, if any.
    pub fn first_snapshot_of(&self, url: &Url) -> Option<&Snapshot> {
        let surt = permadead_url::surt(url);
        self.range_by_exact_surt(&surt).next()
    }

    /// Iterate snapshots whose SURT starts with `prefix`, in key order.
    /// This is the raw scan the CDX API's prefix/host modes use.
    pub fn scan_surt_prefix<'a>(&'a self, prefix: &str) -> impl Iterator<Item = &'a Snapshot> + 'a {
        let prefix = prefix.to_string();
        self.lookups.incr();
        let rows = &self.rows_scanned;
        self.index
            .range((
                Bound::Included((prefix.clone(), SimTime(i64::MIN), 0)),
                Bound::Unbounded,
            ))
            .take_while(move |((surt, _, _), _)| surt.starts_with(&prefix))
            .inspect(move |_| rows.incr())
            .map(|(_, s)| s)
    }

    fn range_by_exact_surt<'a>(&'a self, surt: &str) -> impl Iterator<Item = &'a Snapshot> + 'a {
        let surt = surt.to_string();
        self.lookups.incr();
        self.index
            .range((
                Bound::Included((surt.clone(), SimTime(i64::MIN), 0)),
                Bound::Unbounded,
            ))
            .take_while(move |((k, _, _), _)| *k == surt)
            .map(|(_, s)| s)
    }

    /// Every snapshot in key order, *without* touching the access counters
    /// (for world serialization: the store round-trips by re-inserting in
    /// this order — fresh seqs `0..n` preserve relative order, so every
    /// range scan is bit-identical after a save/load cycle).
    pub fn iter(&self) -> impl Iterator<Item = &Snapshot> {
        self.index.values()
    }

    /// Every distinct SURT in the store (test/debug aid).
    pub fn distinct_urls(&self) -> usize {
        let mut count = 0;
        let mut last: Option<&str> = None;
        for (surt, _, _) in self.index.keys() {
            if last != Some(surt.as_str()) {
                count += 1;
                last = Some(surt.as_str());
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_net::StatusCode;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t(y: i32, m: u32) -> SimTime {
        SimTime::from_ymd(y, m, 1)
    }

    fn snap(url: &str, at: SimTime, status: u16) -> Snapshot {
        Snapshot::from_observation(&u(url), at, StatusCode(status), None, "body")
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(snap("http://e.org/dir/a.html", t(2010, 1), 200));
        s.insert(snap("http://e.org/dir/a.html", t(2014, 6), 404));
        s.insert(snap("http://e.org/dir/a.html", t(2012, 3), 200));
        s.insert(snap("http://e.org/dir/b.html", t(2011, 1), 200));
        s.insert(snap("http://e.org/other/c.html", t(2011, 1), 200));
        s.insert(snap("http://sub.e.org/dir/x.html", t(2011, 1), 200));
        s.insert(snap("http://f.org/dir/a.html", t(2011, 1), 200));
        s
    }

    #[test]
    fn snapshots_in_capture_order() {
        let s = store();
        let snaps = s.snapshots_of(&u("http://e.org/dir/a.html"));
        let years: Vec<i32> = snaps.iter().map(|s| s.captured.year()).collect();
        assert_eq!(years, vec![2010, 2012, 2014]);
    }

    #[test]
    fn first_snapshot() {
        let s = store();
        assert_eq!(
            s.first_snapshot_of(&u("http://e.org/dir/a.html")).unwrap().captured,
            t(2010, 1)
        );
        assert!(s.first_snapshot_of(&u("http://e.org/never")).is_none());
    }

    #[test]
    fn between_filter() {
        let s = store();
        let snaps = s.snapshots_of_between(&u("http://e.org/dir/a.html"), t(2011, 1), t(2014, 6));
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].captured, t(2012, 3));
    }

    #[test]
    fn prefix_scan_directory() {
        let s = store();
        let dir = permadead_url::surt_directory_prefix(&u("http://e.org/dir/a.html"));
        let hits: Vec<&str> = s
            .scan_surt_prefix(&dir)
            .map(|snap| snap.url.path())
            .collect();
        // both a.html (3 captures) and b.html (1), nothing from /other or sub-host
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|p| p.starts_with("/dir/")));
    }

    #[test]
    fn prefix_scan_host() {
        let s = store();
        let hp = permadead_url::surt_host_prefix("e.org");
        let count = s.scan_surt_prefix(&hp).count();
        // everything on e.org (5 snapshots), excluding sub.e.org and f.org
        assert_eq!(count, 5);
    }

    #[test]
    fn url_identity_respects_normalization() {
        let mut s = ArchiveStore::new();
        s.insert(snap("http://E.org//dir/../dir/a.html", t(2010, 1), 200));
        assert_eq!(s.snapshots_of(&u("http://e.org/dir/a.html")).len(), 1);
    }

    #[test]
    fn distinct_urls_counts_surts() {
        let s = store();
        // a.html, b.html, c.html, sub.e.org/x.html, f.org/a.html
        assert_eq!(s.distinct_urls(), 5);
    }

    #[test]
    fn same_instant_captures_both_kept() {
        let mut s = ArchiveStore::new();
        s.insert(snap("http://e.org/a", t(2010, 1), 200));
        s.insert(snap("http://e.org/a", t(2010, 1), 404));
        assert_eq!(s.snapshots_of(&u("http://e.org/a")).len(), 2);
    }
}
