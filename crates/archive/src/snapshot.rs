//! Archived snapshots.
//!
//! A snapshot records what the crawler saw when it requested a URL once,
//! *without* following redirects — that is how Wayback CDX entries work, and
//! it is why the paper can distinguish "archived copy with initial status
//! 200" from "archived copy that was a redirect" (§4).

use permadead_net::{SimTime, StatusCode};
use permadead_text::MinHashSketch;
use permadead_url::Url;

/// Coarse classification of a snapshot's stored content. Real archives store
/// bytes; we store a content sketch plus this label derived *mechanically*
/// from the response (not from world ground truth): the crawler knows only
/// what an archive would — status code, body, redirect target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyClass {
    /// A 2xx body was stored.
    Content,
    /// No body: the response was a redirect.
    Redirect,
    /// No body worth storing: an error status.
    Error,
}

/// One capture of one URL.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The URL as requested.
    pub url: Url,
    /// SURT key (computed once at insert).
    pub surt: String,
    /// Capture instant.
    pub captured: SimTime,
    /// Status code of the *first* response — the paper's "initial status".
    pub initial_status: StatusCode,
    /// Redirect target if `initial_status` is 3xx.
    pub redirect_target: Option<Url>,
    /// What kind of content was stored.
    pub body_class: BodyClass,
    /// Sketch of the stored body (meaningful for `Content`; a sketch of the
    /// empty string otherwise).
    pub sketch: MinHashSketch,
    /// `<title>` of the stored body, or empty — the durable lexical
    /// signature the rediscovery rescue queries with. Real CDX rows carry
    /// this too (the Wayback `urlkey`/`original` metadata includes titles
    /// for indexed HTML).
    pub title: String,
}

impl Snapshot {
    /// Build a snapshot from a single-hop observation.
    pub fn from_observation(
        url: &Url,
        captured: SimTime,
        status: StatusCode,
        redirect_target: Option<Url>,
        body: &str,
    ) -> Snapshot {
        let body_class = if status.is_redirect() {
            BodyClass::Redirect
        } else if status.is_success() {
            BodyClass::Content
        } else {
            BodyClass::Error
        };
        Snapshot {
            url: url.clone(),
            surt: permadead_url::surt(url),
            captured,
            initial_status: status,
            redirect_target,
            body_class,
            sketch: MinHashSketch::of(body, 5),
            title: permadead_text::html::extract_title(body).unwrap_or_default(),
        }
    }

    /// Is this the kind of copy IABot trusts: initial status exactly 200?
    /// (§4: "IABot marks a broken link as permanently dead if it finds no
    /// archived copy for the link where the initial status code was 200.")
    pub fn is_initial_200(&self) -> bool {
        self.initial_status == StatusCode::OK
    }

    /// Is this copy a recorded redirection (the §4.2 population)?
    pub fn is_redirect(&self) -> bool {
        self.initial_status.is_redirect()
    }

    /// Status-code family digit (2, 3, 4, 5) — the CDX filter granularity.
    pub fn status_family(&self) -> u16 {
        self.initial_status.as_u16() / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t() -> SimTime {
        SimTime::from_ymd(2014, 5, 1)
    }

    #[test]
    fn classify_content() {
        let s = Snapshot::from_observation(&u("http://e.org/a"), t(), StatusCode::OK, None, "body text here");
        assert_eq!(s.body_class, BodyClass::Content);
        assert!(s.is_initial_200());
        assert!(!s.is_redirect());
        assert_eq!(s.status_family(), 2);
    }

    #[test]
    fn classify_redirect() {
        let s = Snapshot::from_observation(
            &u("http://e.org/old"),
            t(),
            StatusCode::MOVED_PERMANENTLY,
            Some(u("http://e.org/new")),
            "",
        );
        assert_eq!(s.body_class, BodyClass::Redirect);
        assert!(s.is_redirect());
        assert!(!s.is_initial_200());
        assert_eq!(s.redirect_target.as_ref().unwrap().path(), "/new");
        assert_eq!(s.status_family(), 3);
    }

    #[test]
    fn classify_error() {
        let s = Snapshot::from_observation(&u("http://e.org/x"), t(), StatusCode::NOT_FOUND, None, "");
        assert_eq!(s.body_class, BodyClass::Error);
        assert_eq!(s.status_family(), 4);
    }

    #[test]
    fn surt_computed() {
        let s = Snapshot::from_observation(&u("http://www.e.org/a?x=1"), t(), StatusCode::OK, None, "b");
        assert_eq!(s.surt, "org,e,www)/a?x=1");
    }

    #[test]
    fn title_extracted_from_content_body() {
        let body = "<html><head><title>Steve: Selected Works</title></head><body>x</body></html>";
        let s = Snapshot::from_observation(&u("http://e.org/a"), t(), StatusCode::OK, None, body);
        assert_eq!(s.title, "Steve: Selected Works");
        let bare = Snapshot::from_observation(&u("http://e.org/b"), t(), StatusCode::OK, None, "no markup");
        assert_eq!(bare.title, "");
    }

    #[test]
    fn sketches_compare() {
        let a = Snapshot::from_observation(&u("http://e.org/a"), t(), StatusCode::OK, None, "identical template body");
        let b = Snapshot::from_observation(&u("http://e.org/b"), t(), StatusCode::OK, None, "identical template body");
        assert!(a.sketch.same_body(&b.sketch));
    }
}
