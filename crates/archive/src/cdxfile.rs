//! CDX file serialization.
//!
//! Real Wayback deployments persist their index as sorted CDX text files —
//! one space-separated line per capture — which the CDX server range-scans.
//! We do the same: an [`ArchiveStore`] round-trips through a plain-text CDX
//! file, so worlds can be generated once and re-analyzed many times.
//!
//! Line format (ours, CDX-server-flavoured):
//!
//! ```text
//! <urlkey> <timestamp14> <original-url> <status> <redirect-target|-> <digest-hex> <empty-flag> <sketch-csv> <title|->
//! ```
//!
//! Fields never contain spaces (URLs with spaces don't parse into the store
//! in the first place, and titles are percent-encoded), so splitting on
//! spaces is unambiguous.

use crate::snapshot::{BodyClass, Snapshot};
use crate::store::ArchiveStore;
use permadead_net::{Duration, SimTime, StatusCode};
use permadead_text::sketch::SKETCH_SIZE;
use permadead_text::MinHashSketch;
use permadead_url::Url;
use std::fmt::Write as _;

/// Serialize the whole store, one line per snapshot, in SURT-then-time
/// order (the order the index iterates naturally).
pub fn to_cdx_string(store: &ArchiveStore) -> String {
    let mut out = String::new();
    for snap in store.scan_surt_prefix("") {
        write_line(&mut out, snap);
    }
    out
}

fn write_line(out: &mut String, snap: &Snapshot) {
    let ts = timestamp14(snap.captured);
    let redirect = snap
        .redirect_target
        .as_ref()
        .map(|u| u.to_string())
        .unwrap_or_else(|| "-".to_string());
    let sketch_csv = snap
        .sketch
        .mins()
        .iter()
        .map(|m| format!("{m:x}"))
        .collect::<Vec<_>>()
        .join(",");
    let _ = writeln!(
        out,
        "{} {} {} {} {} {:x} {} {} {}",
        snap.surt,
        ts,
        snap.url,
        snap.initial_status.as_u16(),
        redirect,
        snap.sketch.digest,
        u8::from(snap.sketch.empty),
        sketch_csv,
        encode_title(&snap.title),
    );
}

/// Percent-encode a title so it fits a space-separated line. Empty titles
/// serialize as `-` (the CDX "no value" convention).
fn encode_title(title: &str) -> String {
    if title.is_empty() {
        return "-".to_string();
    }
    let mut out = String::with_capacity(title.len());
    for b in title.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b'~' | b'!' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// Inverse of [`encode_title`]. `None` on malformed escapes or bad UTF-8.
fn decode_title(field: &str) -> Option<String> {
    if field == "-" {
        return Some(String::new());
    }
    let bytes = field.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Why a CDX line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdxParseError {
    /// Wrong number of fields.
    FieldCount { line: usize, got: usize },
    /// A field failed to parse (url, timestamp, status, digest…).
    BadField { line: usize, field: &'static str },
}

impl std::fmt::Display for CdxParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdxParseError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 9 fields, got {got}")
            }
            CdxParseError::BadField { line, field } => {
                write!(f, "line {line}: bad {field} field")
            }
        }
    }
}

impl std::error::Error for CdxParseError {}

/// Parse a CDX dump back into a store. Empty lines and `#` comments are
/// skipped; any malformed line is an error (an archive index must not be
/// silently lossy).
pub fn from_cdx_string(text: &str) -> Result<ArchiveStore, CdxParseError> {
    let mut store = ArchiveStore::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(' ').collect();
        if fields.len() != 9 {
            return Err(CdxParseError::FieldCount {
                line: line_no,
                got: fields.len(),
            });
        }
        let captured = parse_timestamp14(fields[1]).ok_or(CdxParseError::BadField {
            line: line_no,
            field: "timestamp",
        })?;
        let url = Url::parse(fields[2]).map_err(|_| CdxParseError::BadField {
            line: line_no,
            field: "url",
        })?;
        let status: u16 = fields[3].parse().map_err(|_| CdxParseError::BadField {
            line: line_no,
            field: "status",
        })?;
        let redirect_target = if fields[4] == "-" {
            None
        } else {
            Some(Url::parse(fields[4]).map_err(|_| CdxParseError::BadField {
                line: line_no,
                field: "redirect",
            })?)
        };
        let digest = u64::from_str_radix(fields[5], 16).map_err(|_| CdxParseError::BadField {
            line: line_no,
            field: "digest",
        })?;
        let empty = fields[6] == "1";
        let mut mins = [0u64; SKETCH_SIZE];
        let parts: Vec<&str> = fields[7].split(',').collect();
        if parts.len() != SKETCH_SIZE {
            return Err(CdxParseError::BadField {
                line: line_no,
                field: "sketch",
            });
        }
        for (slot, part) in mins.iter_mut().zip(parts) {
            *slot = u64::from_str_radix(part, 16).map_err(|_| CdxParseError::BadField {
                line: line_no,
                field: "sketch",
            })?;
        }
        let status = StatusCode(status);
        let body_class = if status.is_redirect() {
            BodyClass::Redirect
        } else if status.is_success() {
            BodyClass::Content
        } else {
            BodyClass::Error
        };
        let title = decode_title(fields[8]).ok_or(CdxParseError::BadField {
            line: line_no,
            field: "title",
        })?;
        store.insert(Snapshot {
            url: url.clone(),
            surt: permadead_url::surt(&url),
            captured,
            initial_status: status,
            redirect_target,
            body_class,
            sketch: MinHashSketch::from_parts(mins, digest, empty),
            title,
        });
    }
    Ok(store)
}

/// `yyyymmddhhmmss`, the Wayback timestamp format.
pub fn timestamp14(t: SimTime) -> String {
    let d = t.date();
    let secs = t.as_unix().rem_euclid(86_400);
    format!(
        "{:04}{:02}{:02}{:02}{:02}{:02}",
        d.year,
        d.month,
        d.day,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// Parse a 14-digit Wayback timestamp.
pub fn parse_timestamp14(ts: &str) -> Option<SimTime> {
    if ts.len() != 14 || !ts.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let year: i32 = ts[0..4].parse().ok()?;
    let month: u32 = ts[4..6].parse().ok()?;
    let day: u32 = ts[6..8].parse().ok()?;
    let h: i64 = ts[8..10].parse().ok()?;
    let m: i64 = ts[10..12].parse().ok()?;
    let s: i64 = ts[12..14].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) || h > 23 || m > 59 || s > 59 {
        return None;
    }
    Some(SimTime::from_ymd(year, month, day) + Duration::seconds(h * 3600 + m * 60 + s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn sample_store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(Snapshot::from_observation(
            &u("http://e.org/a.html"),
            SimTime::from_ymd(2010, 5, 3) + Duration::hours(14),
            StatusCode::OK,
            None,
            "the page body with several words in it",
        ));
        s.insert(Snapshot::from_observation(
            &u("http://e.org/old"),
            SimTime::from_ymd(2014, 1, 1),
            StatusCode::MOVED_PERMANENTLY,
            Some(u("http://e.org/new")),
            "",
        ));
        s.insert(Snapshot::from_observation(
            &u("http://f.org/x?b=2&a=1"),
            SimTime::from_ymd(2016, 12, 31),
            StatusCode::NOT_FOUND,
            None,
            "",
        ));
        s
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let text = to_cdx_string(&store);
        let back = from_cdx_string(&text).unwrap();
        assert_eq!(back.len(), store.len());
        for (a, b) in store.scan_surt_prefix("").zip(back.scan_surt_prefix("")) {
            assert_eq!(a.url, b.url);
            assert_eq!(a.surt, b.surt);
            assert_eq!(a.captured, b.captured);
            assert_eq!(a.initial_status, b.initial_status);
            assert_eq!(a.redirect_target, b.redirect_target);
            assert_eq!(a.body_class, b.body_class);
            assert_eq!(a.sketch, b.sketch);
            assert_eq!(a.title, b.title);
        }
        // and the text itself is stable
        assert_eq!(to_cdx_string(&back), text);
    }

    #[test]
    fn lines_are_surt_sorted() {
        let text = to_cdx_string(&sample_store());
        let keys: Vec<&str> = text.lines().map(|l| l.split(' ').next().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = format!("# cdx dump\n\n{}", to_cdx_string(&sample_store()));
        assert_eq!(from_cdx_string(&text).unwrap().len(), 3);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(matches!(
            from_cdx_string("too few fields"),
            Err(CdxParseError::FieldCount { .. })
        ));
        let good = to_cdx_string(&sample_store());
        let broken = good.replacen("http://", "nothttp-", 1);
        // first URL occurrence is inside the surt? no — surt has no scheme;
        // the replacement hits the original-url field
        assert!(from_cdx_string(&broken).is_err());
    }

    #[test]
    fn titles_round_trip_percent_encoded() {
        let mut store = ArchiveStore::new();
        store.insert(Snapshot::from_observation(
            &u("http://e.org/t"),
            SimTime::from_ymd(2012, 2, 2),
            StatusCode::OK,
            None,
            "<html><head><title>Quel été! 100% \"done\" — right?</title></head><body>x</body></html>",
        ));
        let text = to_cdx_string(&store);
        assert_eq!(text.lines().next().unwrap().split(' ').count(), 9, "encoded titles add no fields");
        let back = from_cdx_string(&text).unwrap();
        assert_eq!(
            back.scan_surt_prefix("").next().unwrap().title,
            "Quel été! 100% \"done\" — right?"
        );
    }

    #[test]
    fn timestamp_round_trip() {
        let t = SimTime::from_ymd(2022, 3, 15) + Duration::hours(13) + Duration::seconds(59);
        assert_eq!(parse_timestamp14(&timestamp14(t)), Some(t));
        assert_eq!(parse_timestamp14("2022031"), None);
        assert_eq!(parse_timestamp14("20221315000000"), None); // month 13
    }

    proptest! {
        #[test]
        fn arbitrary_snapshots_round_trip(
            host in "[a-z]{2,8}\\.(org|com|sim)",
            path in "(/[a-z0-9]{1,6}){1,3}",
            status in prop_oneof![Just(200u16), Just(301), Just(302), Just(404), Just(503)],
            day in 0i64..15000,
            body in "[a-z ]{0,40}",
        ) {
            let url = u(&format!("http://{host}{path}"));
            let target = (300..400).contains(&status).then(|| u(&format!("http://{host}/")));
            let mut store = ArchiveStore::new();
            store.insert(Snapshot::from_observation(
                &url,
                SimTime(day * 86_400),
                StatusCode(status),
                target,
                &body,
            ));
            let back = from_cdx_string(&to_cdx_string(&store)).unwrap();
            prop_assert_eq!(back.len(), 1);
            let orig = store.snapshots_of(&url);
            let re = back.snapshots_of(&url);
            prop_assert_eq!(orig[0].sketch, re[0].sketch);
            prop_assert_eq!(orig[0].initial_status, re[0].initial_status);
        }
    }
}
