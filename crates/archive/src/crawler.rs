//! The capture side of the archive.
//!
//! The crawler fetches a URL from the live web at a scheduled instant and
//! records what it saw. Like the real Wayback crawler it records *each hop*
//! of a redirect chain as its own snapshot (which is why CDX rows carry
//! initial statuses and redirect targets), and records error responses too —
//! an archived 404 is still an archived copy, and §3 leans on exactly those
//! ("the first of these copies is erroneous for 95% of links").
//!
//! Transport-level failures (DNS death, timeouts) leave no snapshot: the
//! archive has nothing to store, which is how never-working typo URLs end up
//! with zero copies (§5.1).

use crate::snapshot::Snapshot;
use crate::store::ArchiveStore;
use permadead_net::http::Vantage;
use permadead_net::{Client, Network, SimTime};
use permadead_url::Url;

/// Outcome of one capture attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// At least one snapshot was stored.
    Stored { snapshots: usize },
    /// The fetch failed at transport level; nothing stored.
    Failed,
}

/// The archive's crawler.
#[derive(Debug, Clone, Copy)]
pub struct Crawler {
    client: Client,
    /// Whether to store snapshots for every hop of a redirect chain (the
    /// real crawler does; disable to model minimal capture).
    pub capture_redirect_hops: bool,
}

impl Default for Crawler {
    fn default() -> Self {
        Crawler {
            client: Client::new().with_vantage(Vantage::Crawler),
            capture_redirect_hops: true,
        }
    }
}

impl Crawler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch `url` from `web` at `t` and store what was observed.
    pub fn capture<N: Network>(
        &self,
        store: &mut ArchiveStore,
        web: &N,
        url: &Url,
        t: SimTime,
    ) -> CaptureOutcome {
        let record = self.client.get(web, url, t);
        if record.hops.is_empty() {
            return CaptureOutcome::Failed;
        }
        let mut stored = 0;
        for (i, hop) in record.hops.iter().enumerate() {
            let is_last = i + 1 == record.hops.len();
            if i > 0 && !self.capture_redirect_hops {
                break;
            }
            let body = if is_last { record.body.as_str() } else { "" };
            store.insert(Snapshot::from_observation(
                &hop.url,
                t,
                hop.status,
                hop.location.clone(),
                body,
            ));
            stored += 1;
        }
        CaptureOutcome::Stored { snapshots: stored }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_net::{FetchError, Request, Response, ServeResult, StatusCode};
    use std::collections::HashMap;

    struct TableNet(HashMap<String, ServeResult>);

    impl Network for TableNet {
        fn request(&self, req: &Request) -> ServeResult {
            self.0
                .get(&req.url.to_string())
                .cloned()
                .unwrap_or(Ok(Response::not_found()))
        }
    }

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(2014, 5, 1)
    }

    #[test]
    fn captures_200_with_body() {
        let net = TableNet(
            [("http://e.org/a".to_string(), Ok(Response::ok("page body words".into())))]
                .into_iter()
                .collect(),
        );
        let mut store = ArchiveStore::new();
        let out = Crawler::new().capture(&mut store, &net, &u("http://e.org/a"), t0());
        assert_eq!(out, CaptureOutcome::Stored { snapshots: 1 });
        let snaps = store.snapshots_of(&u("http://e.org/a"));
        assert_eq!(snaps.len(), 1);
        assert!(snaps[0].is_initial_200());
        assert!(!snaps[0].sketch.empty);
    }

    #[test]
    fn captures_each_redirect_hop() {
        let net = TableNet(
            [
                (
                    "http://e.org/old".to_string(),
                    Ok(Response::redirect(StatusCode::MOVED_PERMANENTLY, u("http://e.org/new"))),
                ),
                ("http://e.org/new".to_string(), Ok(Response::ok("final".into()))),
            ]
            .into_iter()
            .collect(),
        );
        let mut store = ArchiveStore::new();
        let out = Crawler::new().capture(&mut store, &net, &u("http://e.org/old"), t0());
        assert_eq!(out, CaptureOutcome::Stored { snapshots: 2 });
        // the old URL's snapshot is a 301 with its target recorded
        let old = store.snapshots_of(&u("http://e.org/old"));
        assert_eq!(old[0].initial_status, StatusCode::MOVED_PERMANENTLY);
        assert_eq!(old[0].redirect_target.as_ref().unwrap().path(), "/new");
        // the new URL got its own 200 snapshot
        assert!(store.snapshots_of(&u("http://e.org/new"))[0].is_initial_200());
    }

    #[test]
    fn captures_404() {
        let net = TableNet(HashMap::new()); // defaults to 404
        let mut store = ArchiveStore::new();
        let out = Crawler::new().capture(&mut store, &net, &u("http://e.org/gone"), t0());
        assert_eq!(out, CaptureOutcome::Stored { snapshots: 1 });
        assert_eq!(
            store.snapshots_of(&u("http://e.org/gone"))[0].initial_status,
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn dns_failure_stores_nothing() {
        struct DeadNet;
        impl Network for DeadNet {
            fn request(&self, _: &Request) -> ServeResult {
                Err(FetchError::Dns(permadead_net::DnsError::NxDomain))
            }
        }
        let mut store = ArchiveStore::new();
        let out = Crawler::new().capture(&mut store, &DeadNet, &u("http://gone.org/x"), t0());
        assert_eq!(out, CaptureOutcome::Failed);
        assert!(store.is_empty());
    }

    #[test]
    fn hop_capture_can_be_disabled() {
        let net = TableNet(
            [
                (
                    "http://e.org/old".to_string(),
                    Ok(Response::redirect(StatusCode::FOUND, u("http://e.org/new"))),
                ),
                ("http://e.org/new".to_string(), Ok(Response::ok("final".into()))),
            ]
            .into_iter()
            .collect(),
        );
        let mut store = ArchiveStore::new();
        let mut crawler = Crawler::new();
        crawler.capture_redirect_hops = false;
        let out = crawler.capture(&mut store, &net, &u("http://e.org/old"), t0());
        assert_eq!(out, CaptureOutcome::Stored { snapshots: 1 });
        assert!(store.snapshots_of(&u("http://e.org/new")).is_empty());
    }
}
