//! A Wayback Machine simulator.
//!
//! The Internet Archive appears in the paper through three interfaces, all
//! reproduced here:
//!
//! - **The snapshot store** ([`store`]): every capture of every URL, keyed
//!   by SURT and timestamp, recording the *initial* status code and redirect
//!   target observed at crawl time (§2.4's definition).
//! - **The CDX API** ([`cdx`]): exact / directory-prefix / host queries with
//!   status filters and time ranges — what the paper's §4.2 redirect
//!   validation and §5.2 spatial analysis issue.
//! - **The Availability API** ([`availability`]): "closest usable snapshot
//!   to time T" lookups, *with simulated latency*. IABot's client-side
//!   timeout on this API is the root cause of §4.1's misses, so latency is a
//!   first-class citizen.
//!
//! [`crawler`] is the capture side: it fetches URLs from the live web (via
//! the same redirect-following client everyone uses) and records snapshots.
//! Crawl *scheduling* — the months-late first captures behind Figure 5 —
//! lives in `permadead-sim`, which decides when the crawler visits what.

pub mod availability;
pub mod cdx;
pub mod cdxfile;
pub mod crawler;
pub mod replay;
pub mod snapshot;
pub mod store;

pub use availability::{attempt_nonce, AvailabilityApi, AvailabilityError, AvailabilityPolicy};
pub use cdxfile::{from_cdx_string, to_cdx_string};
pub use cdx::{CdxApi, CdxError, CdxMatchType, CdxQuery, StatusFilter, TimedCdx};
pub use crawler::{CaptureOutcome, Crawler};
pub use snapshot::{BodyClass, Snapshot};
pub use replay::{ReplayNet, REPLAY_HOST};
pub use store::ArchiveStore;
