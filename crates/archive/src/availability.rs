//! The Availability API: "closest usable snapshot to time T".
//!
//! This is the endpoint IABot queries when patching a broken link, and its
//! *latency* is the protagonist of §4.1: the bot applies a client-side
//! timeout, and when no response arrives in time it concludes the URL was
//! never archived. The API itself is modeled with the same heavy-tailed
//! latency a shared public lookup service exhibits.

use crate::snapshot::Snapshot;
use crate::store::ArchiveStore;
use permadead_net::latency::{LatencyModel, Millis};
use permadead_net::SimTime;
use permadead_url::Url;

/// What the caller accepts as a "usable" copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvailabilityPolicy {
    /// Only copies whose initial status was 200 — IABot's production policy
    /// (it "conservatively links to a page's archived copy only if no
    /// redirections were encountered when that copy was crawled", §1/§4.2).
    Initial200Only,
    /// 200s, or redirects (3xx). Used by the paper's counterfactual: how
    /// many links could be patched if validated redirects were trusted?
    AllowRedirects,
    /// Any snapshot at all, even errors (used for diagnosis, not patching).
    Any,
}

impl AvailabilityPolicy {
    fn accepts(self, s: &Snapshot) -> bool {
        match self {
            AvailabilityPolicy::Initial200Only => s.is_initial_200(),
            AvailabilityPolicy::AllowRedirects => s.is_initial_200() || s.is_redirect(),
            AvailabilityPolicy::Any => true,
        }
    }
}

/// Availability lookup failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvailabilityError {
    /// The API did not answer within the caller's timeout. The caller cannot
    /// distinguish this from "service briefly overloaded" — IABot treats it
    /// as "never archived", which is exactly the §4.1 bug class.
    Timeout,
}

/// The Availability API endpoint.
pub struct AvailabilityApi<'a> {
    store: &'a ArchiveStore,
    latency: LatencyModel,
}

impl<'a> AvailabilityApi<'a> {
    pub fn new(store: &'a ArchiveStore, latency: LatencyModel) -> Self {
        AvailabilityApi { store, latency }
    }

    /// With a well-behaved default latency model.
    pub fn with_default_latency(store: &'a ArchiveStore, seed: u64) -> Self {
        Self::new(store, LatencyModel::lookup_api(seed))
    }

    /// The snapshot acceptable under `policy` captured *closest to* `around`
    /// (IABot requests the copy nearest to when the link was added to the
    /// article, §2.1).
    ///
    /// `client_timeout_ms: None` waits forever (WaybackMedic style);
    /// `Some(t)` gives up when the simulated response latency exceeds `t`.
    /// `nonce` distinguishes repeated calls (each is an independent draw).
    pub fn closest(
        &self,
        url: &Url,
        around: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
    ) -> Result<Option<&'a Snapshot>, AvailabilityError> {
        if let Some(timeout) = client_timeout_ms {
            let key = format!("avail:{url}");
            if self.latency.exceeds_timeout(&key, nonce, timeout) {
                return Err(AvailabilityError::Timeout);
            }
        }
        Ok(self
            .store
            .snapshots_of(url)
            .into_iter()
            .filter(|s| policy.accepts(s))
            .min_by_key(|s| {
                let d = (s.captured - around).as_seconds();
                d.unsigned_abs()
            }))
    }

    /// Batched lookup: one request carries many URLs, paying a single
    /// latency draw for the whole batch (the real Availability API accepts
    /// batches, and bots batch to amortize round-trips). The flip side —
    /// and the §4.1 tradeoff in miniature — is that one slow response now
    /// times out *every* URL in the batch.
    pub fn closest_batch(
        &self,
        urls: &[&Url],
        around: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
    ) -> Result<Vec<Option<&'a Snapshot>>, AvailabilityError> {
        if let Some(timeout) = client_timeout_ms {
            let key = format!("avail-batch:{}", urls.len());
            if self.latency.exceeds_timeout(&key, nonce, timeout) {
                return Err(AvailabilityError::Timeout);
            }
        }
        Ok(urls
            .iter()
            .map(|url| {
                self.store
                    .snapshots_of(url)
                    .into_iter()
                    .filter(|s| policy.accepts(s))
                    .min_by_key(|s| (s.captured - around).as_seconds().unsigned_abs())
            })
            .collect())
    }

    /// Like [`Self::closest`] but restricted to snapshots captured strictly
    /// before `before` — "what existed when IABot looked" (§4's analyses).
    pub fn closest_before(
        &self,
        url: &Url,
        around: SimTime,
        before: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
    ) -> Result<Option<&'a Snapshot>, AvailabilityError> {
        if let Some(timeout) = client_timeout_ms {
            let key = format!("avail:{url}");
            if self.latency.exceeds_timeout(&key, nonce, timeout) {
                return Err(AvailabilityError::Timeout);
            }
        }
        Ok(self
            .store
            .snapshots_of(url)
            .into_iter()
            .filter(|s| s.captured < before && policy.accepts(s))
            .min_by_key(|s| (s.captured - around).as_seconds().unsigned_abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_net::StatusCode;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 1, 1)
    }

    fn snap(url: &str, at: SimTime, status: u16) -> Snapshot {
        let target = if (300..400).contains(&status) {
            Some(u("http://e.org/new"))
        } else {
            None
        };
        Snapshot::from_observation(&u(url), at, StatusCode(status), target, "b")
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(snap("http://e.org/a", t(2008), 200));
        s.insert(snap("http://e.org/a", t(2012), 301));
        s.insert(snap("http://e.org/a", t(2016), 404));
        s.insert(snap("http://e.org/a", t(2018), 200));
        s
    }

    /// A latency model that never trips timeouts (tail disabled, tiny median).
    fn instant() -> LatencyModel {
        LatencyModel::lookup_api(1).with_median(1.0).with_tail(0.0, 1.0, 1.0)
    }

    #[test]
    fn closest_picks_nearest_acceptable() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        // around 2013, 200-only: candidates are 2008 and 2018 → 2008 is 5y
        // away, 2018 is 5y away; tie broken by min_by_key stability (first
        // minimal = 2008)
        let got = api
            .closest(&u("http://e.org/a"), t(2014), AvailabilityPolicy::Initial200Only, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(got.captured, t(2018)); // 4 years vs 6 years
    }

    #[test]
    fn policy_filters() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        let url = u("http://e.org/a");
        // around 2012: redirect copy is exactly there but 200-only skips it
        let strict = api
            .closest(&url, t(2012), AvailabilityPolicy::Initial200Only, None, 0)
            .unwrap()
            .unwrap();
        assert_ne!(strict.captured, t(2012));
        let relaxed = api
            .closest(&url, t(2012), AvailabilityPolicy::AllowRedirects, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(relaxed.captured, t(2012));
        // Any accepts the 404 too
        let any = api
            .closest(&url, t(2016), AvailabilityPolicy::Any, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(any.captured, t(2016));
    }

    #[test]
    fn closest_before_excludes_later_copies() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        let got = api
            .closest_before(
                &u("http://e.org/a"),
                t(2014),
                t(2017),
                AvailabilityPolicy::Initial200Only,
                None,
                0,
            )
            .unwrap()
            .unwrap();
        // the 2018 copy exists but is after the cutoff
        assert_eq!(got.captured, t(2008));
    }

    #[test]
    fn unarchived_url_is_none_not_error() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        assert!(api
            .closest(&u("http://e.org/never"), t(2014), AvailabilityPolicy::Any, None, 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn tight_timeout_times_out_sometimes() {
        let s = store();
        // heavy-tailed model + tight timeout
        let api = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let url = u("http://e.org/a");
        let outcomes: Vec<_> = (0..200)
            .map(|n| api.closest(&url, t(2014), AvailabilityPolicy::Any, Some(1_000), n))
            .collect();
        let timeouts = outcomes.iter().filter(|o| o.is_err()).count();
        assert!(timeouts > 0, "expected some timeouts");
        assert!(timeouts < 200, "expected some successes");
    }

    #[test]
    fn batch_lookup_amortizes_and_fails_together() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        let u1 = u("http://e.org/a");
        let u2 = u("http://e.org/never");
        let got = api
            .closest_batch(&[&u1, &u2], t(2014), AvailabilityPolicy::Initial200Only, None, 0)
            .unwrap();
        assert_eq!(got.len(), 2);
        assert!(got[0].is_some());
        assert!(got[1].is_none());

        // with a heavy-tailed model + tight timeout, some batches fail as a
        // whole — every URL in them goes unanswered
        let slow = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let outcomes: Vec<_> = (0..200)
            .map(|n| slow.closest_batch(&[&u1, &u2], t(2014), AvailabilityPolicy::Any, Some(1_000), n))
            .collect();
        assert!(outcomes.iter().any(|o| o.is_err()));
        assert!(outcomes.iter().any(|o| o.is_ok()));
    }

    #[test]
    fn no_timeout_when_unbounded() {
        let s = store();
        let api = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        for n in 0..200 {
            assert!(api
                .closest(&u("http://e.org/a"), t(2014), AvailabilityPolicy::Any, None, n)
                .is_ok());
        }
    }
}
