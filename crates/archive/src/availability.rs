//! The Availability API: "closest usable snapshot to time T".
//!
//! This is the endpoint IABot queries when patching a broken link, and its
//! *latency* is the protagonist of §4.1: the bot applies a client-side
//! timeout, and when no response arrives in time it concludes the URL was
//! never archived. The API itself is modeled with the same heavy-tailed
//! latency a shared public lookup service exhibits.

use crate::snapshot::Snapshot;
use crate::store::ArchiveStore;
use permadead_net::latency::{LatencyModel, Millis};
use permadead_net::retry::{AttemptFailure, RetryCause, RetryOutcome, RetryPolicy};
use permadead_net::SimTime;
use permadead_url::Url;

/// Nonce for the `attempt`-th retry of a lookup whose first attempt used
/// `base`. `attempt == 0` returns `base` unchanged, so a single-attempt
/// policy consumes exactly the draw the un-retried code path consumed —
/// bit-identical behaviour by construction.
pub fn attempt_nonce(base: u64, attempt: u32) -> u64 {
    base ^ (attempt as u64).wrapping_mul(0xD1B54A32D192ED03)
}

/// What the caller accepts as a "usable" copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvailabilityPolicy {
    /// Only copies whose initial status was 200 — IABot's production policy
    /// (it "conservatively links to a page's archived copy only if no
    /// redirections were encountered when that copy was crawled", §1/§4.2).
    Initial200Only,
    /// 200s, or redirects (3xx). Used by the paper's counterfactual: how
    /// many links could be patched if validated redirects were trusted?
    AllowRedirects,
    /// Any snapshot at all, even errors (used for diagnosis, not patching).
    Any,
}

impl AvailabilityPolicy {
    fn accepts(self, s: &Snapshot) -> bool {
        match self {
            AvailabilityPolicy::Initial200Only => s.is_initial_200(),
            AvailabilityPolicy::AllowRedirects => s.is_initial_200() || s.is_redirect(),
            AvailabilityPolicy::Any => true,
        }
    }
}

/// Availability lookup failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvailabilityError {
    /// The API did not answer within the caller's timeout. The caller cannot
    /// distinguish this from "service briefly overloaded" — IABot treats it
    /// as "never archived", which is exactly the §4.1 bug class.
    Timeout,
}

/// The Availability API endpoint.
pub struct AvailabilityApi<'a> {
    store: &'a ArchiveStore,
    latency: LatencyModel,
}

impl<'a> AvailabilityApi<'a> {
    pub fn new(store: &'a ArchiveStore, latency: LatencyModel) -> Self {
        AvailabilityApi { store, latency }
    }

    /// With a well-behaved default latency model.
    pub fn with_default_latency(store: &'a ArchiveStore, seed: u64) -> Self {
        Self::new(store, LatencyModel::lookup_api(seed))
    }

    /// The snapshot acceptable under `policy` captured *closest to* `around`
    /// (IABot requests the copy nearest to when the link was added to the
    /// article, §2.1).
    ///
    /// `client_timeout_ms: None` waits forever (WaybackMedic style);
    /// `Some(t)` gives up when the simulated response latency exceeds `t`.
    /// `nonce` distinguishes repeated calls (each is an independent draw).
    pub fn closest(
        &self,
        url: &Url,
        around: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
    ) -> Result<Option<&'a Snapshot>, AvailabilityError> {
        if let Some(timeout) = client_timeout_ms {
            let key = format!("avail:{url}");
            if self.latency.exceeds_timeout(&key, nonce, timeout) {
                return Err(AvailabilityError::Timeout);
            }
        }
        Ok(self
            .store
            .snapshots_of(url)
            .into_iter()
            .filter(|s| policy.accepts(s))
            .min_by_key(|s| {
                let d = (s.captured - around).as_seconds();
                d.unsigned_abs()
            }))
    }

    /// Batched lookup: one request carries many URLs, paying a single
    /// latency draw for the whole batch (the real Availability API accepts
    /// batches, and bots batch to amortize round-trips). The flip side —
    /// and the §4.1 tradeoff in miniature — is that one slow response now
    /// times out *every* URL in the batch.
    pub fn closest_batch(
        &self,
        urls: &[&Url],
        around: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
    ) -> Result<Vec<Option<&'a Snapshot>>, AvailabilityError> {
        if let Some(timeout) = client_timeout_ms {
            // the key must identify *this* batch, not just its size — two
            // equal-size batches sharing timeout fate for a given nonce was
            // a latency-key collision
            let mut hash: u64 = 0xcbf29ce484222325;
            for url in urls {
                for b in url.to_string().bytes() {
                    hash ^= b as u64;
                    hash = hash.wrapping_mul(0x100000001b3);
                }
                hash ^= 0xff; // separator so ["ab","c"] != ["a","bc"]
                hash = hash.wrapping_mul(0x100000001b3);
            }
            let key = format!("avail-batch:{}:{hash:016x}", urls.len());
            if self.latency.exceeds_timeout(&key, nonce, timeout) {
                return Err(AvailabilityError::Timeout);
            }
        }
        Ok(urls
            .iter()
            .map(|url| {
                self.store
                    .snapshots_of(url)
                    .into_iter()
                    .filter(|s| policy.accepts(s))
                    .min_by_key(|s| (s.captured - around).as_seconds().unsigned_abs())
            })
            .collect())
    }

    /// Like [`Self::closest`] but restricted to snapshots captured strictly
    /// before `before` — "what existed when IABot looked" (§4's analyses).
    pub fn closest_before(
        &self,
        url: &Url,
        around: SimTime,
        before: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
    ) -> Result<Option<&'a Snapshot>, AvailabilityError> {
        if let Some(timeout) = client_timeout_ms {
            let key = format!("avail:{url}");
            if self.latency.exceeds_timeout(&key, nonce, timeout) {
                return Err(AvailabilityError::Timeout);
            }
        }
        Ok(self
            .store
            .snapshots_of(url)
            .into_iter()
            .filter(|s| s.captured < before && policy.accepts(s))
            .min_by_key(|s| (s.captured - around).as_seconds().unsigned_abs()))
    }

    /// [`Self::closest`] under a [`RetryPolicy`]: each attempt is an
    /// independent latency draw (via [`attempt_nonce`]), so a lookup that
    /// misses the client timeout once can still succeed on a retry — the
    /// counterfactual fix for the §4.1 "never archived" misclassification.
    ///
    /// With `RetryPolicy::single()` this is bit-identical to `closest`.
    pub fn closest_with_retry(
        &self,
        url: &Url,
        around: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
        retry: &RetryPolicy,
    ) -> (Result<Option<&'a Snapshot>, AvailabilityError>, RetryOutcome) {
        let key = format!("avail:{url}");
        retry.run(&key, |attempt| {
            self.closest(url, around, policy, client_timeout_ms, attempt_nonce(nonce, attempt))
                .map_err(|error| AttemptFailure {
                    cause: RetryCause::AvailabilityTimeout,
                    retry_after_ms: None,
                    error,
                })
        })
    }

    /// [`Self::closest_before`] under a [`RetryPolicy`]; see
    /// [`Self::closest_with_retry`].
    // closest_before's own signature plus the policy: splitting it into a
    // params struct would leave the two lookups asymmetric for one argument
    #[allow(clippy::too_many_arguments)]
    pub fn closest_before_with_retry(
        &self,
        url: &Url,
        around: SimTime,
        before: SimTime,
        policy: AvailabilityPolicy,
        client_timeout_ms: Option<Millis>,
        nonce: u64,
        retry: &RetryPolicy,
    ) -> (Result<Option<&'a Snapshot>, AvailabilityError>, RetryOutcome) {
        let key = format!("avail:{url}");
        retry.run(&key, |attempt| {
            self.closest_before(
                url,
                around,
                before,
                policy,
                client_timeout_ms,
                attempt_nonce(nonce, attempt),
            )
            .map_err(|error| AttemptFailure {
                cause: RetryCause::AvailabilityTimeout,
                retry_after_ms: None,
                error,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_net::StatusCode;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 1, 1)
    }

    fn snap(url: &str, at: SimTime, status: u16) -> Snapshot {
        let target = if (300..400).contains(&status) {
            Some(u("http://e.org/new"))
        } else {
            None
        };
        Snapshot::from_observation(&u(url), at, StatusCode(status), target, "b")
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(snap("http://e.org/a", t(2008), 200));
        s.insert(snap("http://e.org/a", t(2012), 301));
        s.insert(snap("http://e.org/a", t(2016), 404));
        s.insert(snap("http://e.org/a", t(2018), 200));
        s
    }

    /// A latency model that never trips timeouts (tail disabled, tiny median).
    fn instant() -> LatencyModel {
        LatencyModel::lookup_api(1).with_median(1.0).with_tail(0.0, 1.0, 1.0)
    }

    #[test]
    fn closest_picks_nearest_acceptable() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        // around 2013, 200-only: candidates are 2008 and 2018 → 2008 is 5y
        // away, 2018 is 5y away; tie broken by min_by_key stability (first
        // minimal = 2008)
        let got = api
            .closest(&u("http://e.org/a"), t(2014), AvailabilityPolicy::Initial200Only, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(got.captured, t(2018)); // 4 years vs 6 years
    }

    #[test]
    fn policy_filters() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        let url = u("http://e.org/a");
        // around 2012: redirect copy is exactly there but 200-only skips it
        let strict = api
            .closest(&url, t(2012), AvailabilityPolicy::Initial200Only, None, 0)
            .unwrap()
            .unwrap();
        assert_ne!(strict.captured, t(2012));
        let relaxed = api
            .closest(&url, t(2012), AvailabilityPolicy::AllowRedirects, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(relaxed.captured, t(2012));
        // Any accepts the 404 too
        let any = api
            .closest(&url, t(2016), AvailabilityPolicy::Any, None, 0)
            .unwrap()
            .unwrap();
        assert_eq!(any.captured, t(2016));
    }

    #[test]
    fn closest_before_excludes_later_copies() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        let got = api
            .closest_before(
                &u("http://e.org/a"),
                t(2014),
                t(2017),
                AvailabilityPolicy::Initial200Only,
                None,
                0,
            )
            .unwrap()
            .unwrap();
        // the 2018 copy exists but is after the cutoff
        assert_eq!(got.captured, t(2008));
    }

    #[test]
    fn unarchived_url_is_none_not_error() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        assert!(api
            .closest(&u("http://e.org/never"), t(2014), AvailabilityPolicy::Any, None, 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn tight_timeout_times_out_sometimes() {
        let s = store();
        // heavy-tailed model + tight timeout
        let api = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let url = u("http://e.org/a");
        let outcomes: Vec<_> = (0..200)
            .map(|n| api.closest(&url, t(2014), AvailabilityPolicy::Any, Some(1_000), n))
            .collect();
        let timeouts = outcomes.iter().filter(|o| o.is_err()).count();
        assert!(timeouts > 0, "expected some timeouts");
        assert!(timeouts < 200, "expected some successes");
    }

    #[test]
    fn batch_lookup_amortizes_and_fails_together() {
        let s = store();
        let api = AvailabilityApi::new(&s, instant());
        let u1 = u("http://e.org/a");
        let u2 = u("http://e.org/never");
        let got = api
            .closest_batch(&[&u1, &u2], t(2014), AvailabilityPolicy::Initial200Only, None, 0)
            .unwrap();
        assert_eq!(got.len(), 2);
        assert!(got[0].is_some());
        assert!(got[1].is_none());

        // with a heavy-tailed model + tight timeout, some batches fail as a
        // whole — every URL in them goes unanswered
        let slow = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let outcomes: Vec<_> = (0..200)
            .map(|n| slow.closest_batch(&[&u1, &u2], t(2014), AvailabilityPolicy::Any, Some(1_000), n))
            .collect();
        assert!(outcomes.iter().any(|o| o.is_err()));
        assert!(outcomes.iter().any(|o| o.is_ok()));
    }

    #[test]
    fn equal_size_batches_do_not_share_timeout_fate() {
        let s = store();
        let slow = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let a = u("http://e.org/a");
        let b = u("http://e.org/never");
        let c = u("http://other.example/x");
        let d = u("http://elsewhere.example/y");
        // Two distinct batches of equal size. Under the old `avail-batch:{len}`
        // key they drew from the same latency stream, so for every nonce the
        // timeout verdicts agreed. Now they must diverge for some nonce.
        let diverges = (0..200).any(|n| {
            let first = slow
                .closest_batch(&[&a, &b], t(2014), AvailabilityPolicy::Any, Some(1_000), n)
                .is_err();
            let second = slow
                .closest_batch(&[&c, &d], t(2014), AvailabilityPolicy::Any, Some(1_000), n)
                .is_err();
            first != second
        });
        assert!(diverges, "equal-size batches still share latency draws");
        // and a given batch's fate stays deterministic per nonce
        for n in 0..50 {
            assert_eq!(
                slow.closest_batch(&[&a, &b], t(2014), AvailabilityPolicy::Any, Some(1_000), n)
                    .is_err(),
                slow.closest_batch(&[&a, &b], t(2014), AvailabilityPolicy::Any, Some(1_000), n)
                    .is_err()
            );
        }
    }

    #[test]
    fn attempt_nonce_identity_at_zero() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(attempt_nonce(base, 0), base);
            assert_ne!(attempt_nonce(base, 1), base);
            assert_ne!(attempt_nonce(base, 1), attempt_nonce(base, 2));
        }
    }

    #[test]
    fn single_attempt_retry_is_bit_identical_to_closest() {
        let s = store();
        let api = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let url = u("http://e.org/a");
        let single = permadead_net::RetryPolicy::single();
        // Snapshot has no PartialEq; compare by capture time
        let when = |r: &Result<Option<&Snapshot>, AvailabilityError>| {
            r.as_ref().map(|o| o.map(|s| s.captured)).map_err(|e| *e)
        };
        for n in 0..100 {
            let plain = api.closest(&url, t(2014), AvailabilityPolicy::Any, Some(1_000), n);
            let (wrapped, outcome) =
                api.closest_with_retry(&url, t(2014), AvailabilityPolicy::Any, Some(1_000), n, &single);
            assert_eq!(when(&plain), when(&wrapped));
            assert_eq!(outcome.tries(), 1);
        }
    }

    #[test]
    fn retries_rescue_lookups_the_single_attempt_missed() {
        let s = store();
        let api = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        let url = u("http://e.org/a");
        let single = permadead_net::RetryPolicy::single();
        let retrying = permadead_net::RetryPolicy::standard(4, 0xB0);
        let mut rescued = 0;
        let mut single_timeouts = 0;
        for n in 0..200 {
            let (one, _) =
                api.closest_with_retry(&url, t(2014), AvailabilityPolicy::Any, Some(1_000), n, &single);
            let (many, outcome) =
                api.closest_with_retry(&url, t(2014), AvailabilityPolicy::Any, Some(1_000), n, &retrying);
            if one.is_err() {
                single_timeouts += 1;
                if many.is_ok() {
                    rescued += 1;
                    assert!(outcome.tries() > 1);
                    assert!(outcome.counts.availability_timeout > 0);
                }
            } else {
                // a first-attempt success never needs (or takes) a retry
                assert_eq!(outcome.tries(), 1);
                assert_eq!(
                    many.map(|o| o.map(|s| s.captured)),
                    one.map(|o| o.map(|s| s.captured))
                );
            }
        }
        assert!(single_timeouts > 0, "latency model never timed out");
        assert!(rescued > 0, "retries rescued nothing");
    }

    #[test]
    fn no_timeout_when_unbounded() {
        let s = store();
        let api = AvailabilityApi::new(&s, LatencyModel::lookup_api(7));
        for n in 0..200 {
            assert!(api
                .closest(&u("http://e.org/a"), t(2014), AvailabilityPolicy::Any, None, n)
                .is_ok());
        }
    }
}
