//! The CDX query API.
//!
//! Mirrors the Wayback CDX server's query surface at the fidelity the paper
//! uses it (§5.2: "we query Wayback Machine using its CDX API to find other
//! similar URLs for which it does have 200 status code archived copies" —
//! once per directory, once per hostname). Queries compile to SURT range
//! scans over [`ArchiveStore`].

use crate::snapshot::Snapshot;
use crate::store::ArchiveStore;
use permadead_net::latency::{LatencyModel, Millis};
use permadead_net::SimTime;
use permadead_url::Url;

/// How a query key matches stored URLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdxMatchType {
    /// Exactly this URL.
    Exact(Url),
    /// Everything in the URL's directory (same prefix until the last '/').
    DirectoryOf(Url),
    /// Everything under a hostname.
    Host(String),
}

/// Status-code filter, at the granularity CDX exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatusFilter {
    /// Any status.
    #[default]
    Any,
    /// Exactly this code.
    Code(u16),
    /// This family (2 ⇒ 2xx, 3 ⇒ 3xx, …).
    Family(u16),
}

impl StatusFilter {
    fn matches(self, snap: &Snapshot) -> bool {
        match self {
            StatusFilter::Any => true,
            StatusFilter::Code(c) => snap.initial_status.as_u16() == c,
            StatusFilter::Family(f) => snap.status_family() == f,
        }
    }
}

/// A CDX query.
#[derive(Debug, Clone)]
pub struct CdxQuery {
    pub match_type: CdxMatchType,
    pub status: StatusFilter,
    /// Only captures at or after this time.
    pub from: Option<SimTime>,
    /// Only captures strictly before this time.
    pub to: Option<SimTime>,
    /// Stop after this many rows (the real API caps responses; bots rely on
    /// it — IABot-style lookups never page through millions of rows).
    pub limit: Option<usize>,
    /// At most one row per distinct URL (CDX `collapse=urlkey`).
    pub collapse_url: bool,
}

impl CdxQuery {
    pub fn exact(url: &Url) -> Self {
        CdxQuery {
            match_type: CdxMatchType::Exact(url.clone()),
            status: StatusFilter::Any,
            from: None,
            to: None,
            limit: None,
            collapse_url: false,
        }
    }

    pub fn directory_of(url: &Url) -> Self {
        CdxQuery {
            match_type: CdxMatchType::DirectoryOf(url.clone()),
            ..CdxQuery::exact(url)
        }
    }

    pub fn host(host: &str) -> Self {
        CdxQuery {
            match_type: CdxMatchType::Host(host.to_string()),
            status: StatusFilter::Any,
            from: None,
            to: None,
            limit: None,
            collapse_url: false,
        }
    }

    pub fn with_status(mut self, status: StatusFilter) -> Self {
        self.status = status;
        self
    }

    pub fn since(mut self, t: SimTime) -> Self {
        self.from = Some(t);
        self
    }

    pub fn until(mut self, t: SimTime) -> Self {
        self.to = Some(t);
        self
    }

    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    pub fn collapsed(mut self) -> Self {
        self.collapse_url = true;
        self
    }
}

/// The CDX API endpoint.
pub struct CdxApi<'a> {
    store: &'a ArchiveStore,
}

impl<'a> CdxApi<'a> {
    pub fn new(store: &'a ArchiveStore) -> Self {
        CdxApi { store }
    }

    /// Run a query, returning snapshots in SURT-then-time order.
    pub fn query(&self, q: &CdxQuery) -> Vec<&'a Snapshot> {
        let prefix = match &q.match_type {
            CdxMatchType::Exact(url) => permadead_url::surt(url),
            CdxMatchType::DirectoryOf(url) => permadead_url::surt_directory_prefix(url),
            CdxMatchType::Host(host) => permadead_url::surt_host_prefix(host),
        };
        let exact = matches!(q.match_type, CdxMatchType::Exact(_));
        let mut out = Vec::new();
        let mut last_surt: Option<&str> = None;
        for snap in self.store.scan_surt_prefix(&prefix) {
            if exact && snap.surt != prefix {
                continue;
            }
            if !q.status.matches(snap) {
                continue;
            }
            if q.from.is_some_and(|f| snap.captured < f) {
                continue;
            }
            if q.to.is_some_and(|t| snap.captured >= t) {
                continue;
            }
            if q.collapse_url && last_surt == Some(snap.surt.as_str()) {
                continue;
            }
            last_surt = Some(snap.surt.as_str());
            out.push(snap);
            if q.limit.is_some_and(|l| out.len() >= l) {
                break;
            }
        }
        out
    }

    /// Count rows a query would return (respects the limit).
    pub fn count(&self, q: &CdxQuery) -> usize {
        self.query(q).len()
    }

    /// Number of *distinct URLs* with at least one snapshot matching the
    /// query — what Figure 6's x-axis counts.
    pub fn distinct_url_count(&self, q: &CdxQuery) -> usize {
        let mut q = q.clone();
        q.collapse_url = true;
        self.query(&q).len()
    }
}

/// CDX lookup failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdxError {
    /// The API did not answer within the caller's timeout. Like the
    /// Availability API's timeout (§4.1), the caller cannot distinguish this
    /// from "no rows" unless it retries — treating it as an empty result is
    /// exactly the blind spot the §4.2 and §5.2 analyses inherit.
    Timeout,
}

/// [`CdxApi`] behind the shared lookup service's heavy-tailed latency — the
/// CDX server is the same public infrastructure as the Availability API, so
/// its queries can miss a client timeout too.
///
/// `timeout_ms: None` waits forever *and skips the latency draw entirely*:
/// results, and every downstream random stream, are bit-identical to the raw
/// [`CdxApi`]. `nonce` distinguishes repeated calls (each is an independent
/// draw); retried callers derive it via
/// [`attempt_nonce`](crate::availability::attempt_nonce).
pub struct TimedCdx<'a> {
    api: CdxApi<'a>,
    latency: LatencyModel,
    timeout_ms: Option<Millis>,
}

impl<'a> TimedCdx<'a> {
    pub fn new(store: &'a ArchiveStore, latency_seed: u64, timeout_ms: Option<Millis>) -> Self {
        TimedCdx {
            api: CdxApi::new(store),
            latency: LatencyModel::lookup_api(latency_seed),
            timeout_ms,
        }
    }

    /// The latency stream is keyed by what the server scans, so two queries
    /// over different directories (or a directory vs. its host) draw
    /// independently, while re-asking the same question re-draws only via
    /// the nonce.
    fn latency_key(q: &CdxQuery) -> String {
        match &q.match_type {
            CdxMatchType::Exact(url) => format!("cdx-exact:{}", permadead_url::surt(url)),
            CdxMatchType::DirectoryOf(url) => {
                format!("cdx-dir:{}", permadead_url::surt_directory_prefix(url))
            }
            CdxMatchType::Host(host) => format!("cdx-host:{}", permadead_url::surt_host_prefix(host)),
        }
    }

    fn wait(&self, q: &CdxQuery, nonce: u64) -> Result<(), CdxError> {
        let Some(timeout) = self.timeout_ms else {
            return Ok(());
        };
        if self.latency.exceeds_timeout(&Self::latency_key(q), nonce, timeout) {
            return Err(CdxError::Timeout);
        }
        Ok(())
    }

    /// [`CdxApi::query`], paying one latency draw.
    pub fn query(&self, q: &CdxQuery, nonce: u64) -> Result<Vec<&'a Snapshot>, CdxError> {
        self.wait(q, nonce)?;
        Ok(self.api.query(q))
    }

    /// [`CdxApi::distinct_url_count`], paying one latency draw.
    pub fn distinct_url_count(&self, q: &CdxQuery, nonce: u64) -> Result<usize, CdxError> {
        self.wait(q, nonce)?;
        Ok(self.api.distinct_url_count(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permadead_net::StatusCode;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t(y: i32, m: u32) -> SimTime {
        SimTime::from_ymd(y, m, 1)
    }

    fn snap(url: &str, at: SimTime, status: u16) -> Snapshot {
        let target = if (300..400).contains(&status) {
            Some(u("http://e.org/"))
        } else {
            None
        };
        Snapshot::from_observation(&u(url), at, StatusCode(status), target, "b")
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(snap("http://e.org/d/a.html", t(2010, 1), 200));
        s.insert(snap("http://e.org/d/a.html", t(2012, 1), 301));
        s.insert(snap("http://e.org/d/a.html", t(2014, 1), 404));
        s.insert(snap("http://e.org/d/b.html", t(2011, 1), 200));
        s.insert(snap("http://e.org/d/b.html", t(2013, 1), 200));
        s.insert(snap("http://e.org/x/c.html", t(2011, 1), 200));
        s.insert(snap("http://other.org/d/a.html", t(2011, 1), 200));
        s
    }

    #[test]
    fn exact_query() {
        let s = store();
        let api = CdxApi::new(&s);
        let rows = api.query(&CdxQuery::exact(&u("http://e.org/d/a.html")));
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].captured <= w[1].captured));
    }

    #[test]
    fn exact_does_not_leak_prefix_cousins() {
        // "…/d/a.html" must not match "…/d/a.html2" style keys
        let mut s = store();
        s.insert(snap("http://e.org/d/a.html2", t(2010, 1), 200));
        let api = CdxApi::new(&s);
        assert_eq!(api.query(&CdxQuery::exact(&u("http://e.org/d/a.html"))).len(), 3);
    }

    #[test]
    fn status_filters() {
        let s = store();
        let api = CdxApi::new(&s);
        let url = u("http://e.org/d/a.html");
        assert_eq!(
            api.query(&CdxQuery::exact(&url).with_status(StatusFilter::Code(200))).len(),
            1
        );
        assert_eq!(
            api.query(&CdxQuery::exact(&url).with_status(StatusFilter::Family(3))).len(),
            1
        );
        assert_eq!(
            api.query(&CdxQuery::exact(&url).with_status(StatusFilter::Family(4))).len(),
            1
        );
    }

    #[test]
    fn time_range() {
        let s = store();
        let api = CdxApi::new(&s);
        let url = u("http://e.org/d/a.html");
        let rows = api.query(&CdxQuery::exact(&url).since(t(2011, 1)).until(t(2014, 1)));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].captured, t(2012, 1));
    }

    #[test]
    fn directory_query() {
        let s = store();
        let api = CdxApi::new(&s);
        let q = CdxQuery::directory_of(&u("http://e.org/d/whatever.html"))
            .with_status(StatusFilter::Code(200));
        // 200s in /d/: a.html@2010, b.html@2011, b.html@2013
        assert_eq!(api.count(&q), 3);
        // distinct URLs with a 200 in /d/: a.html, b.html
        assert_eq!(api.distinct_url_count(&q), 2);
    }

    #[test]
    fn host_query() {
        let s = store();
        let api = CdxApi::new(&s);
        let q = CdxQuery::host("e.org").with_status(StatusFilter::Code(200));
        assert_eq!(api.count(&q), 4);
        assert_eq!(api.distinct_url_count(&q), 3);
    }

    #[test]
    fn limit_caps_rows() {
        let s = store();
        let api = CdxApi::new(&s);
        let q = CdxQuery::host("e.org").with_limit(2);
        assert_eq!(api.count(&q), 2);
    }

    #[test]
    fn collapse_dedupes_urls() {
        let s = store();
        let api = CdxApi::new(&s);
        let q = CdxQuery::host("e.org").collapsed();
        assert_eq!(api.count(&q), 3); // a.html, b.html, c.html
    }

    #[test]
    fn empty_result_for_unknown() {
        let s = store();
        let api = CdxApi::new(&s);
        assert_eq!(api.count(&CdxQuery::exact(&u("http://nowhere.org/x"))), 0);
        assert_eq!(api.count(&CdxQuery::host("nowhere.org")), 0);
    }

    #[test]
    fn timed_cdx_without_timeout_is_bit_identical_to_raw() {
        let s = store();
        let raw = CdxApi::new(&s);
        let timed = TimedCdx::new(&s, 7, None);
        let q = CdxQuery::host("e.org").with_status(StatusFilter::Code(200));
        for nonce in 0..50 {
            let fast = timed.query(&q, nonce).expect("unbounded query cannot time out");
            assert_eq!(fast.len(), raw.query(&q).len());
            assert_eq!(timed.distinct_url_count(&q, nonce), Ok(raw.distinct_url_count(&q)));
        }
    }

    #[test]
    fn timed_cdx_tight_timeout_times_out_sometimes() {
        let s = store();
        let timed = TimedCdx::new(&s, 7, Some(1_000));
        let raw = CdxApi::new(&s);
        let q = CdxQuery::host("e.org");
        let outcomes: Vec<_> = (0..200).map(|n| timed.query(&q, n)).collect();
        let timeouts = outcomes.iter().filter(|o| o.is_err()).count();
        assert!(timeouts > 0, "expected some timeouts");
        assert!(timeouts < 200, "expected some successes");
        // a success returns exactly the raw rows
        for o in outcomes.into_iter().flatten() {
            assert_eq!(o.len(), raw.query(&q).len());
        }
    }

    #[test]
    fn timed_cdx_distinct_queries_draw_independently() {
        let s = store();
        let timed = TimedCdx::new(&s, 7, Some(1_000));
        let dir = CdxQuery::directory_of(&u("http://e.org/d/whatever.html"));
        let host = CdxQuery::host("e.org");
        // the same nonce must not tie the directory query's fate to the
        // host query's — their latency keys differ
        let diverges =
            (0..200).any(|n| timed.query(&dir, n).is_err() != timed.query(&host, n).is_err());
        assert!(diverges, "directory and host queries share latency draws");
    }

    mod completeness {
        //! The range-scan answers must equal a brute-force filter over every
        //! snapshot — for arbitrary stores and arbitrary queries.
        use super::*;
        use proptest::prelude::*;

        fn brute_force<'a>(
            store: &'a ArchiveStore,
            q: &CdxQuery,
        ) -> Vec<&'a Snapshot> {
            let mut rows: Vec<&Snapshot> = store
                .scan_surt_prefix("")
                .filter(|s| match &q.match_type {
                    CdxMatchType::Exact(url) => s.surt == permadead_url::surt(url),
                    CdxMatchType::DirectoryOf(url) => {
                        s.surt.starts_with(&permadead_url::surt_directory_prefix(url))
                    }
                    CdxMatchType::Host(host) => {
                        s.surt.starts_with(&permadead_url::surt_host_prefix(host))
                    }
                })
                .filter(|s| match q.status {
                    StatusFilter::Any => true,
                    StatusFilter::Code(c) => s.initial_status.as_u16() == c,
                    StatusFilter::Family(f) => s.status_family() == f,
                })
                .filter(|s| q.from.is_none_or(|f| s.captured >= f))
                .filter(|s| q.to.is_none_or(|t| s.captured < t))
                .collect();
            if q.collapse_url {
                let mut seen = std::collections::HashSet::new();
                rows.retain(|s| seen.insert(s.surt.clone()));
            }
            if let Some(l) = q.limit {
                rows.truncate(l);
            }
            rows
        }

        proptest! {
            #[test]
            fn scan_matches_brute_force(
                entries in proptest::collection::vec(
                    (
                        "[ab]{1,2}\\.(org|sim)",          // host
                        "(/[a-c]{1,2}){1,3}",            // path
                        prop_oneof![Just(200u16), Just(301), Just(404)],
                        0i64..4000,                       // day
                    ),
                    0..24,
                ),
                host_q in "[ab]{1,2}\\.(org|sim)",
                dir_q in "(/[a-c]{1,2}){1,2}/x",
                fam in prop_oneof![Just(StatusFilter::Any), Just(StatusFilter::Code(200)), Just(StatusFilter::Family(3))],
                limit in proptest::option::of(1usize..5),
                collapse in any::<bool>(),
            ) {
                let mut store = ArchiveStore::new();
                for (host, path, status, day) in &entries {
                    let target = (300..400).contains(status).then(|| u(&format!("http://{host}/")));
                    store.insert(Snapshot::from_observation(
                        &u(&format!("http://{host}{path}")),
                        SimTime(day * 86_400),
                        StatusCode(*status),
                        target,
                        "b",
                    ));
                }
                let api = CdxApi::new(&store);
                for match_type in [
                    CdxMatchType::Host(host_q.clone()),
                    CdxMatchType::DirectoryOf(u(&format!("http://{host_q}{dir_q}"))),
                    CdxMatchType::Exact(u(&format!("http://{host_q}{dir_q}"))),
                ] {
                    let mut q = CdxQuery::host("placeholder");
                    q.match_type = match_type;
                    q.status = fam;
                    q.limit = limit;
                    q.collapse_url = collapse;
                    let fast: Vec<String> = api.query(&q).iter().map(|s| format!("{}@{}", s.surt, s.captured)).collect();
                    let slow: Vec<String> = brute_force(&store, &q).iter().map(|s| format!("{}@{}", s.surt, s.captured)).collect();
                    prop_assert_eq!(fast, slow);
                }
            }
        }
    }
}
