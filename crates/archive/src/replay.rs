//! The replay service: `web.archive.sim` as a browsable host.
//!
//! When a bot patches a reference, the wikitext points at
//! `http://web.archive.sim/web/<ts>/<original>`. [`ReplayNet`] makes those
//! URLs actually *fetchable*: it wraps any live-web [`Network`] and answers
//! replay requests from the snapshot store, the way the real Wayback replay
//! frontend serves `web.archive.org/web/...` URLs:
//!
//! - content snapshots answer 200 with a replay banner body;
//! - archived redirects answer 302 **to the replay URL of their target**
//!   (Wayback rewrites redirects into the archive, not out of it);
//! - error snapshots answer their archived status;
//! - unknown captures answer 404, and the service picks the snapshot
//!   *closest in time* to the requested timestamp, like the real one.

use crate::store::ArchiveStore;
use permadead_net::{FetchError, Network, Request, Response, SimTime, StatusCode};
use permadead_url::Url;

/// Hostname the replay service answers on (kept in sync with
/// `permadead-bot`'s archive-url builder).
pub const REPLAY_HOST: &str = "web.archive.sim";

/// A live web plus the archive's replay frontend.
pub struct ReplayNet<'a, N> {
    pub web: &'a N,
    pub archive: &'a ArchiveStore,
}

impl<'a, N> ReplayNet<'a, N> {
    pub fn new(web: &'a N, archive: &'a ArchiveStore) -> Self {
        ReplayNet { web, archive }
    }

    fn serve_replay(&self, req: &Request) -> Response {
        let Some((original, ts)) = parse_replay_path(&req.url) else {
            return Response::not_found();
        };
        let snaps = self.archive.snapshots_of(&original);
        let Some(best) = snaps
            .into_iter()
            .min_by_key(|s| (s.captured - ts).as_seconds().unsigned_abs())
        else {
            return Response::not_found();
        };
        if best.initial_status.is_redirect() {
            if let Some(target) = &best.redirect_target {
                let replay_target = replay_url(target, best.captured);
                return Response::redirect(StatusCode::FOUND, replay_target);
            }
            return Response::not_found();
        }
        if best.initial_status.is_success() {
            return Response::ok(format!(
                "<html><head><title>Archived copy</title></head><body>\
                 <p>Snapshot of {} captured {} (digest {:016x}).</p>\
                 </body></html>",
                best.url,
                best.captured,
                best.sketch.digest
            ));
        }
        Response::status_only(best.initial_status)
    }
}

impl<'a, N: Network> Network for ReplayNet<'a, N> {
    fn request(&self, req: &Request) -> Result<Response, FetchError> {
        if req.url.host() == REPLAY_HOST {
            return Ok(self.serve_replay(req));
        }
        self.web.request(req)
    }
}

/// Build a replay URL (mirror of `permadead-bot`'s `archived_copy_url`,
/// kept here so the archive crate is self-contained).
pub fn replay_url(original: &Url, captured: SimTime) -> Url {
    let ts = crate::cdxfile::timestamp14(captured);
    Url::parse(&format!("http://{REPLAY_HOST}/web/{ts}/{original}"))
        .expect("replay URLs always parse")
}

/// Recover `(original, timestamp)` from a replay URL path.
pub fn parse_replay_path(replay: &Url) -> Option<(Url, SimTime)> {
    let path = replay.path().strip_prefix("/web/")?;
    let (ts, original) = path.split_once('/')?;
    let t = crate::cdxfile::parse_timestamp14(ts)?;
    let mut orig = original.to_string();
    if let Some(q) = replay.query() {
        orig.push('?');
        orig.push_str(q);
    }
    Url::parse(&orig).ok().map(|u| (u, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use permadead_net::Client;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn t(y: i32) -> SimTime {
        SimTime::from_ymd(y, 6, 1)
    }

    /// A live web where everything is dead — replay must still work.
    struct DeadWeb;
    impl Network for DeadWeb {
        fn request(&self, _req: &Request) -> Result<Response, FetchError> {
            Err(FetchError::Dns(permadead_net::DnsError::NxDomain))
        }
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(Snapshot::from_observation(
            &u("http://e.org/page"),
            t(2013),
            StatusCode::OK,
            None,
            "archived page words",
        ));
        s.insert(Snapshot::from_observation(
            &u("http://e.org/old"),
            t(2014),
            StatusCode::MOVED_PERMANENTLY,
            Some(u("http://e.org/new")),
            "",
        ));
        s.insert(Snapshot::from_observation(
            &u("http://e.org/new"),
            t(2014),
            StatusCode::OK,
            None,
            "target page words",
        ));
        s.insert(Snapshot::from_observation(
            &u("http://e.org/gone"),
            t(2015),
            StatusCode::NOT_FOUND,
            None,
            "",
        ));
        s
    }

    #[test]
    fn replay_serves_content_snapshot() {
        let archive = store();
        let net = ReplayNet::new(&DeadWeb, &archive);
        let url = replay_url(&u("http://e.org/page"), t(2013));
        let rec = Client::new().get(&net, &url, t(2022));
        assert_eq!(rec.final_status(), Some(StatusCode::OK));
        assert!(rec.body.contains("Snapshot of http://e.org/page"));
    }

    #[test]
    fn replay_rewrites_archived_redirects_into_the_archive() {
        let archive = store();
        let net = ReplayNet::new(&DeadWeb, &archive);
        let url = replay_url(&u("http://e.org/old"), t(2014));
        let rec = Client::new().get(&net, &url, t(2022));
        // 302 → replay URL of /new → archived 200 of /new
        assert_eq!(rec.final_status(), Some(StatusCode::OK));
        assert!(rec.was_redirected());
        assert_eq!(rec.final_url().unwrap().host(), REPLAY_HOST);
        assert!(rec.body.contains("e.org/new"));
    }

    #[test]
    fn replay_closest_in_time_wins() {
        let mut archive = store();
        archive.insert(Snapshot::from_observation(
            &u("http://e.org/page"),
            t(2020),
            StatusCode::NOT_FOUND,
            None,
            "",
        ));
        let net = ReplayNet::new(&DeadWeb, &archive);
        // ask for the 2013-adjacent copy: get the 200
        let rec = Client::new().get(&net, &replay_url(&u("http://e.org/page"), t(2013)), t(2022));
        assert_eq!(rec.final_status(), Some(StatusCode::OK));
        // ask near 2020: get the archived 404
        let rec = Client::new().get(&net, &replay_url(&u("http://e.org/page"), t(2020)), t(2022));
        assert_eq!(rec.final_status(), Some(StatusCode::NOT_FOUND));
    }

    #[test]
    fn unarchived_url_404s() {
        let archive = store();
        let net = ReplayNet::new(&DeadWeb, &archive);
        let rec = Client::new().get(&net, &replay_url(&u("http://never.org/x"), t(2013)), t(2022));
        assert_eq!(rec.final_status(), Some(StatusCode::NOT_FOUND));
    }

    #[test]
    fn malformed_replay_paths_404() {
        let archive = store();
        let net = ReplayNet::new(&DeadWeb, &archive);
        for bad in [
            "http://web.archive.sim/web/notadate/http://e.org/x",
            "http://web.archive.sim/other",
        ] {
            let rec = Client::new().get(&net, &u(bad), t(2022));
            assert_eq!(rec.final_status(), Some(StatusCode::NOT_FOUND), "{bad}");
        }
    }

    #[test]
    fn non_replay_hosts_pass_through() {
        let archive = store();
        let net = ReplayNet::new(&DeadWeb, &archive);
        let rec = Client::new().get(&net, &u("http://e.org/page"), t(2022));
        // the underlying (dead) web answers
        assert!(rec.outcome.is_err());
    }

    #[test]
    fn replay_url_round_trip() {
        let orig = u("http://e.org/a/b.html?x=1");
        let at = t(2014);
        let (back, ts) = parse_replay_path(&replay_url(&orig, at)).unwrap();
        assert_eq!(back, orig);
        assert_eq!(ts, at);
    }
}
