//! `permadead-loadgen` — an open-loop production-traffic harness.
//!
//! The repo's older bench loop is **closed-loop**: N clients each wait for a
//! response before sending the next request. Closed loops self-throttle —
//! when the server stalls, the clients politely stop offering load, and the
//! recorded latencies silently omit every request that *would* have been
//! sent during the stall. This is **coordinated omission** (Tene's "How NOT
//! to Measure Latency"), and it makes a stalling server look fast.
//!
//! This crate does it the other way around, in three stages that are
//! deliberately decoupled:
//!
//! 1. **[`schedule`]** — a deterministic *arrival schedule* is computed up
//!    front from a seed: Poisson or fixed-rate inter-arrivals, optionally
//!    modulated by a diurnal curve, with request URLs drawn Zipf-weighted by
//!    site popularity rank (plus configurable hot-set skew) and an optional
//!    concurrent watch-pump background phase. The schedule is a pure
//!    function of `(spec, universe)` — injector thread counts, server
//!    behaviour, and wall-clock have no influence on it.
//! 2. **[`inject`]** — a dedicated injector thread pool fires the schedule
//!    at the target. Every request is timed from its **scheduled** send
//!    instant, and the gap between scheduled and actual send (the
//!    *lateness*) is recorded per request. A stalled server cannot erase
//!    queued-behind-the-stall requests from the record: they fire late, and
//!    their schedule-based latency includes the wait.
//! 3. **[`report`]** — aggregation into throughput, schedule-based and
//!    response-based percentiles (p50/p99/p999/max), a lateness histogram,
//!    missed-slot counts, and a per-phase status breakdown, rendered as a
//!    stable JSON object for `results/BENCH_loadgen.json`.
//!
//! By construction, per request: `sched_latency = resp_latency + lateness ≥
//! resp_latency`. Under a server stall the schedule-based p99 therefore
//! dominates the response-based p99 — exactly the signal a closed loop
//! destroys.

pub mod inject;
pub mod report;
pub mod schedule;

pub use inject::{fire, InjectorConfig, Sample};
pub use report::{summarize, LoadReport, PhaseBreakdown};
pub use schedule::{
    ArrivalProcess, DiurnalCurve, HotSkew, Op, Schedule, ScheduleSpec, ScheduledRequest,
    WatchPumpSpec,
};
