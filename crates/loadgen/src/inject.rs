//! The open-loop injector: fires a [`Schedule`](crate::schedule::Schedule)
//! at a live server and records per-request timing against the *schedule*,
//! not against when the bytes actually left.
//!
//! The schedule is partitioned across a dedicated pool of injector threads
//! by index (`i % threads`), which keeps every thread's sub-schedule
//! time-ordered and makes the partition itself deterministic. Each thread
//! sleeps until an entry's scheduled instant and then issues the request on
//! a fresh connection. Crucially, a thread never *skips or reschedules* an
//! entry because the server is slow: if responses back up, subsequent
//! entries fire late, the lateness is recorded, and the schedule-based
//! latency of every delayed request includes the delay. That is the
//! anti-coordinated-omission contract:
//!
//! ```text
//! sched_latency  = completion − scheduled_send   (what a user experienced)
//! resp_latency   = completion − actual_send      (what the server saw)
//! lateness       = actual_send − scheduled_send  (injector-side queueing)
//! sched_latency  = resp_latency + lateness  ≥  resp_latency,  always
//! ```
//!
//! A closed-loop bench reports only `resp_latency` and silently drops the
//! lateness term; under a stall the two percentile curves diverge, and this
//! injector keeps both so the divergence is measurable.

use crate::schedule::{Op, Schedule};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Injector pool shape and timeouts.
#[derive(Debug, Clone)]
pub struct InjectorConfig {
    /// Dedicated injector threads. More threads = less self-induced
    /// lateness when responses are slow; the schedule itself never changes.
    pub threads: usize,
    pub connect_timeout: Duration,
    pub read_timeout: Duration,
    /// A request whose lateness exceeds this missed its intended issue slot
    /// (reported as `missed_slots`).
    pub miss_tolerance: Duration,
}

impl Default for InjectorConfig {
    fn default() -> Self {
        InjectorConfig {
            threads: 4,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            miss_tolerance: Duration::from_millis(1),
        }
    }
}

/// One fired request's timing and outcome.
#[derive(Debug, Clone)]
pub struct Sample {
    /// When the schedule said to fire, nanoseconds from run start.
    pub scheduled_nanos: u64,
    /// `actual_send − scheduled_send` (≥ 0: the injector never fires early).
    pub lateness_nanos: u64,
    /// `completion − scheduled_send` — the coordinated-omission-proof number.
    pub sched_latency_nanos: u64,
    /// `completion − actual_send` — what a closed-loop bench would report.
    pub resp_latency_nanos: u64,
    /// HTTP status, or 0 for a transport failure (connect/read error).
    pub status: u16,
    /// Phase label from the schedule entry (`check` / `watch`).
    pub phase: &'static str,
}

fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn render_request(op: &Op) -> Vec<u8> {
    match op {
        Op::Check { url } => format!(
            "GET /check?url={} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n",
            percent_encode(url)
        )
        .into_bytes(),
        Op::Watch { body } => format!(
            "POST /watch HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .into_bytes(),
    }
}

/// Issue one request on a fresh connection; returns the HTTP status (0 on
/// any transport failure — the sample still exists, failures are data).
fn issue(addr: SocketAddr, payload: &[u8], cfg: &InjectorConfig) -> u16 {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, cfg.connect_timeout) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    if stream.write_all(payload).is_err() {
        return 0;
    }
    let mut buf = Vec::with_capacity(1024);
    if stream.read_to_end(&mut buf).is_err() {
        return 0;
    }
    // "HTTP/1.1 200 OK" — status is bytes 9..12
    let head = std::str::from_utf8(buf.get(..12).unwrap_or(&[])).unwrap_or("");
    head.get(9..12).and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Fire the whole schedule at `addr` and return one [`Sample`] per entry,
/// ordered by scheduled time. Blocks until every entry has been fired and
/// answered (or failed).
pub fn fire(addr: SocketAddr, schedule: &Schedule, cfg: &InjectorConfig) -> Vec<Sample> {
    let threads = cfg.threads.max(1);
    let start = Instant::now();
    let mut partitions: Vec<Vec<Sample>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let requests = &schedule.requests;
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(requests.len() / threads + 1);
                    for entry in requests.iter().skip(worker).step_by(threads) {
                        let due = Duration::from_nanos(entry.at_nanos);
                        // sleep to the scheduled instant; if we're already
                        // past it (server slowness backed this thread up),
                        // fire immediately and record the lateness
                        let now = start.elapsed();
                        if let Some(wait) = due.checked_sub(now) {
                            std::thread::sleep(wait);
                        }
                        let payload = render_request(&entry.op);
                        let sent = start.elapsed();
                        let status = issue(addr, &payload, &cfg);
                        let done = start.elapsed();
                        samples.push(Sample {
                            scheduled_nanos: entry.at_nanos,
                            lateness_nanos: (sent.as_nanos() as u64).saturating_sub(entry.at_nanos),
                            sched_latency_nanos: (done.as_nanos() as u64)
                                .saturating_sub(entry.at_nanos),
                            resp_latency_nanos: (done - sent).as_nanos() as u64,
                            status,
                            phase: entry.op.phase(),
                        });
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("injector thread")).collect()
    });
    let mut all: Vec<Sample> = partitions.drain(..).flatten().collect();
    all.sort_by_key(|s| s.scheduled_nanos);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ArrivalProcess, Schedule, ScheduleSpec};
    use std::net::TcpListener;

    /// A one-thread-at-a-time HTTP stub: every connection gets `delay_ms` of
    /// service time before the canned 200. Sequential service means queueing
    /// delay compounds — exactly the stall shape coordinated omission hides.
    fn stub_server(delay_ms: u64) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { break };
                let mut buf = [0u8; 2048];
                let mut seen = Vec::new();
                // read until the blank line ends the headers (plus any body
                // bytes the client pipelined — the stub doesn't care)
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            seen.extend_from_slice(&buf[..n]);
                            if seen.windows(4).any(|w| w == b"\r\n\r\n") {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                if delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
                let _ = stream
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok");
                if seen.is_empty() {
                    break; // poisoned shutdown connection
                }
            }
        });
        (addr, handle)
    }

    fn tiny_schedule(rate_hz: f64, duration_secs: f64) -> Schedule {
        let universe = vec![("http://a.example/x".to_string(), 1)];
        Schedule::generate(
            &ScheduleSpec {
                process: ArrivalProcess::FixedRate { rate_hz },
                duration_secs,
                seed: 9,
                ..ScheduleSpec::default()
            },
            &universe,
        )
    }

    #[test]
    fn every_entry_is_fired_and_sampled_once() {
        let (addr, _server) = stub_server(0);
        let schedule = tiny_schedule(100.0, 0.3);
        let samples = fire(
            addr,
            &schedule,
            &InjectorConfig { threads: 3, ..InjectorConfig::default() },
        );
        assert_eq!(samples.len(), schedule.len(), "open loop drops nothing");
        assert!(samples.iter().all(|s| s.status == 200), "stub always answers 200");
        // per-request invariant: schedule-based latency dominates
        for s in &samples {
            assert_eq!(s.sched_latency_nanos, s.resp_latency_nanos + s.lateness_nanos);
        }
        // merged output is ordered by schedule, not completion
        assert!(samples.windows(2).all(|w| w[0].scheduled_nanos <= w[1].scheduled_nanos));
    }

    #[test]
    fn server_stall_shows_up_as_lateness_not_omission() {
        // 25ms sequential service vs 10ms offered inter-arrival on ONE
        // injector thread: the queue grows, every later request fires
        // later, and the schedule-based view keeps the whole backlog.
        let (addr, _server) = stub_server(25);
        let schedule = tiny_schedule(100.0, 0.25);
        let samples = fire(
            addr,
            &schedule,
            &InjectorConfig { threads: 1, ..InjectorConfig::default() },
        );
        assert_eq!(samples.len(), schedule.len());
        let mut sched: Vec<u64> = samples.iter().map(|s| s.sched_latency_nanos).collect();
        let mut resp: Vec<u64> = samples.iter().map(|s| s.resp_latency_nanos).collect();
        sched.sort_unstable();
        resp.sort_unstable();
        let p99 = |v: &[u64]| v[(v.len() * 99 / 100).min(v.len() - 1)];
        // response-based p99 ~25ms; schedule-based p99 carries the queueing
        // delay (last request is ~15 service times behind schedule)
        assert!(
            p99(&sched) > p99(&resp) * 3,
            "stall hidden: sched p99 {} vs resp p99 {}",
            p99(&sched),
            p99(&resp)
        );
        let late = samples.iter().filter(|s| s.lateness_nanos > 1_000_000).count();
        assert!(late > samples.len() / 2, "most requests should fire late, got {late}");
    }

    #[test]
    fn transport_failures_become_status_zero_samples() {
        // a bound-then-dropped listener: connections are refused
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let schedule = tiny_schedule(200.0, 0.05);
        let samples = fire(addr, &schedule, &InjectorConfig::default());
        assert_eq!(samples.len(), schedule.len(), "failures are samples, not gaps");
        assert!(samples.iter().all(|s| s.status == 0));
    }
}
