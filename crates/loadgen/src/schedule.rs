//! Deterministic arrival schedules.
//!
//! A schedule is the full list of `(instant, operation)` pairs the injector
//! will fire, computed before a single byte hits the network. Determinism is
//! the load generator's core contract: the same `(spec, universe)` yields a
//! bit-identical schedule on every run, every machine, and every injector
//! thread count, so benchmark results are comparable across commits and the
//! CI can diff the schedule head against a pinned golden.
//!
//! Two independent seeded streams feed the schedule:
//!
//! - the **check stream** (seed) drives inter-arrival sampling and URL
//!   draws for the foreground `/check` traffic;
//! - the **watch-pump stream** (seed ⊕ odd constant) drives the background
//!   `POST /watch` phase.
//!
//! Separate streams mean enabling or disabling the watch pump never
//! perturbs the check traffic — the phases compose, they don't interleave
//! their randomness.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How foreground inter-arrival gaps are sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals with the given mean rate — the classic
    /// memoryless model of independent user arrivals.
    Poisson { rate_hz: f64 },
    /// Constant inter-arrivals: `1/rate` apart, exactly. The CI smoke uses
    /// this so req/s floors don't inherit sampling variance.
    FixedRate { rate_hz: f64 },
}

impl ArrivalProcess {
    fn rate_hz(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } | ArrivalProcess::FixedRate { rate_hz } => rate_hz,
        }
    }
}

/// Sinusoidal rate modulation approximating the day/night swing of real
/// inbound traffic: `m(t) = 1 + amplitude·sin(2πt/period)`. An amplitude of
/// 0.5 means peak traffic runs at 1.5× the base rate and the trough at 0.5×.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Swing around the base rate, in `[0, 1)`.
    pub amplitude: f64,
    /// Seconds per full cycle (86 400 for a real day; benches compress it).
    pub period_secs: f64,
}

impl DiurnalCurve {
    /// The rate multiplier at `t` seconds into the run, floored away from
    /// zero so a full-amplitude trough can't stall the schedule forever.
    fn modulation(&self, t_secs: f64) -> f64 {
        let m = 1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t_secs / self.period_secs).sin();
        m.max(0.05)
    }
}

/// Extra skew on top of the Zipf draw: with probability `fraction`, the draw
/// is forced uniformly into the `count` most popular URLs. This models the
/// "everyone checks the same trending link" bursts that pure Zipf smooths
/// over, and concentrates load on a few verdict-cache shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSkew {
    pub count: usize,
    pub fraction: f64,
}

/// The concurrent background phase: `POST /watch` registrations pumped at a
/// fixed rate while the check traffic runs, so the bench exercises the
/// server's monitoring path under foreground load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchPumpSpec {
    pub rate_hz: f64,
    /// URLs per `POST /watch` body.
    pub batch: usize,
}

/// Everything that determines a schedule, besides the URL universe.
#[derive(Debug, Clone)]
pub struct ScheduleSpec {
    pub process: ArrivalProcess,
    pub diurnal: Option<DiurnalCurve>,
    pub duration_secs: f64,
    pub seed: u64,
    /// Zipf exponent over popularity rank: weight ∝ `1/rank^alpha`.
    pub zipf_alpha: f64,
    pub hot: Option<HotSkew>,
    pub watch_pump: Option<WatchPumpSpec>,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        ScheduleSpec {
            process: ArrivalProcess::Poisson { rate_hz: 100.0 },
            diurnal: None,
            duration_secs: 1.0,
            seed: 42,
            zipf_alpha: 0.8,
            hot: None,
            watch_pump: None,
        }
    }
}

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `GET /check?url=…`.
    Check { url: String },
    /// `POST /watch` with a newline-delimited URL body.
    Watch { body: String },
}

impl Op {
    /// The phase label this operation reports under.
    pub fn phase(&self) -> &'static str {
        match self {
            Op::Check { .. } => "check",
            Op::Watch { .. } => "watch",
        }
    }
}

/// One entry in the arrival timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRequest {
    /// Nanoseconds after the run's start instant this request must fire.
    pub at_nanos: u64,
    pub op: Op,
}

/// A complete arrival timeline, sorted by fire time.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub requests: Vec<ScheduledRequest>,
}

/// Zipf-weighted URL sampler over `(url, rank)` pairs. Cumulative weights
/// are precomputed once; each draw is one uniform sample + binary search.
struct ZipfDraw<'a> {
    universe: &'a [(String, u32)],
    cumulative: Vec<f64>,
    total: f64,
}

impl<'a> ZipfDraw<'a> {
    fn new(universe: &'a [(String, u32)], alpha: f64) -> Self {
        let mut cumulative = Vec::with_capacity(universe.len());
        let mut total = 0.0;
        for (_, rank) in universe {
            total += f64::from((*rank).max(1)).powf(-alpha);
            cumulative.push(total);
        }
        ZipfDraw {
            universe,
            cumulative,
            total,
        }
    }

    /// Indices of the `count` most popular URLs (lowest ranks, ties broken
    /// by position so the hot set is deterministic).
    fn hottest(&self, count: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.universe.len()).collect();
        order.sort_by_key(|&i| (self.universe[i].1, i));
        order.truncate(count.max(1));
        order
    }

    fn draw(&self, rng: &mut SmallRng) -> &'a str {
        let needle = rng.gen_range(0.0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= needle);
        &self.universe[idx.min(self.universe.len() - 1)].0
    }
}

impl Schedule {
    /// Compute the full timeline for `spec` over `universe`. Pure: no
    /// clocks, no I/O, no dependence on who will fire it.
    pub fn generate(spec: &ScheduleSpec, universe: &[(String, u32)]) -> Schedule {
        assert!(!universe.is_empty(), "schedule needs a non-empty URL universe");
        assert!(spec.duration_secs > 0.0, "duration must be positive");
        assert!(spec.process.rate_hz() > 0.0, "rate must be positive");

        let zipf = ZipfDraw::new(universe, spec.zipf_alpha);
        let hot_set = spec.hot.map(|h| zipf.hottest(h.count));
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let mut requests = Vec::new();

        // foreground check stream
        let base_gap = 1.0 / spec.process.rate_hz();
        let mut t = 0.0f64;
        loop {
            let raw_gap = match spec.process {
                ArrivalProcess::FixedRate { .. } => base_gap,
                ArrivalProcess::Poisson { .. } => {
                    // inverse-CDF exponential; 1-U keeps ln() off exactly 0
                    let u: f64 = rng.gen_range(0.0..1.0);
                    -(1.0 - u).ln() * base_gap
                }
            };
            let modulation = spec.diurnal.map_or(1.0, |d| d.modulation(t));
            t += raw_gap / modulation;
            if t >= spec.duration_secs {
                break;
            }
            let url = match (&spec.hot, &hot_set) {
                (Some(h), Some(set)) if rng.gen_range(0.0..1.0) < h.fraction => {
                    let pick = set[rng.gen_range(0..set.len())];
                    zipf.universe[pick].0.as_str()
                }
                _ => zipf.draw(&mut rng),
            };
            requests.push(ScheduledRequest {
                at_nanos: (t * 1e9) as u64,
                op: Op::Check { url: url.to_string() },
            });
        }

        // background watch pump, on its own stream so enabling it never
        // perturbs the check timeline above
        if let Some(pump) = spec.watch_pump {
            let mut pump_rng = SmallRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
            let gap = 1.0 / pump.rate_hz.max(0.001);
            let mut t = gap; // first pump lands one gap in, not at t=0
            while t < spec.duration_secs {
                let body: Vec<String> = (0..pump.batch.max(1))
                    .map(|_| zipf.draw(&mut pump_rng).to_string())
                    .collect();
                requests.push(ScheduledRequest {
                    at_nanos: (t * 1e9) as u64,
                    op: Op::Watch { body: body.join("\n") },
                });
                t += gap;
            }
        }

        // merge the phases into one timeline; the sort key includes the
        // phase so equal instants order deterministically
        requests.sort_by(|a, b| (a.at_nanos, a.op.phase()).cmp(&(b.at_nanos, b.op.phase())));
        Schedule { requests }
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The first `n` entries as stable text lines (`at_nanos phase target`),
    /// for pinned-seed goldens: any drift in the RNG, the samplers, or the
    /// merge order shows up as a CI diff.
    pub fn head_lines(&self, n: usize) -> Vec<String> {
        self.requests
            .iter()
            .take(n)
            .map(|r| match &r.op {
                Op::Check { url } => format!("{} check {url}", r.at_nanos),
                Op::Watch { body } => {
                    let first = body.lines().next().unwrap_or("");
                    format!("{} watch[{}] {first}", r.at_nanos, body.lines().count())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: usize) -> Vec<(String, u32)> {
        (0..n)
            .map(|i| (format!("http://host{i}.example/page"), (i as u32) + 1))
            .collect()
    }

    fn spec(process: ArrivalProcess) -> ScheduleSpec {
        ScheduleSpec {
            process,
            duration_secs: 2.0,
            seed: 7,
            ..ScheduleSpec::default()
        }
    }

    #[test]
    fn same_spec_same_universe_is_bit_identical() {
        let u = universe(50);
        let s = spec(ArrivalProcess::Poisson { rate_hz: 200.0 });
        let a = Schedule::generate(&s, &u);
        let b = Schedule::generate(&s, &u);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seed_changes_the_timeline() {
        let u = universe(50);
        let a = Schedule::generate(&spec(ArrivalProcess::Poisson { rate_hz: 200.0 }), &u);
        let mut s2 = spec(ArrivalProcess::Poisson { rate_hz: 200.0 });
        s2.seed = 8;
        let b = Schedule::generate(&s2, &u);
        assert_ne!(a, b);
    }

    #[test]
    fn fixed_rate_spacing_is_exact() {
        let u = universe(10);
        let s = spec(ArrivalProcess::FixedRate { rate_hz: 100.0 });
        let sched = Schedule::generate(&s, &u);
        // 100/s over 2s, first at t=10ms: 199 requests, 10ms apart
        assert_eq!(sched.len(), 199);
        for (i, r) in sched.requests.iter().enumerate() {
            let expected = ((i as f64 + 1.0) * 0.01 * 1e9) as u64;
            let delta = r.at_nanos.abs_diff(expected);
            assert!(delta <= 1_000, "entry {i}: {} vs {expected}", r.at_nanos);
        }
    }

    #[test]
    fn poisson_hits_the_offered_rate_on_average() {
        let u = universe(10);
        let s = ScheduleSpec {
            process: ArrivalProcess::Poisson { rate_hz: 500.0 },
            duration_secs: 4.0,
            seed: 11,
            ..ScheduleSpec::default()
        };
        let sched = Schedule::generate(&s, &u);
        let n = sched.len() as f64;
        // 2000 expected, σ=√2000≈45; ±10% is >4σ of headroom
        assert!((1800.0..2200.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn zipf_draws_favor_the_popularity_head() {
        let u = universe(100);
        let s = ScheduleSpec {
            process: ArrivalProcess::Poisson { rate_hz: 2000.0 },
            duration_secs: 2.0,
            seed: 3,
            zipf_alpha: 1.0,
            ..ScheduleSpec::default()
        };
        let sched = Schedule::generate(&s, &u);
        let count_for = |url: &str| {
            sched
                .requests
                .iter()
                .filter(|r| matches!(&r.op, Op::Check { url: u } if u == url))
                .count()
        };
        let head = count_for("http://host0.example/page"); // rank 1
        let tail = count_for("http://host99.example/page"); // rank 100
        assert!(
            head > tail * 10,
            "rank 1 drawn {head}×, rank 100 drawn {tail}× — no popularity head"
        );
    }

    #[test]
    fn hot_skew_concentrates_draws_beyond_zipf() {
        let u = universe(100);
        let base = ScheduleSpec {
            process: ArrivalProcess::Poisson { rate_hz: 2000.0 },
            duration_secs: 2.0,
            seed: 5,
            zipf_alpha: 0.5,
            ..ScheduleSpec::default()
        };
        let hot = ScheduleSpec {
            hot: Some(HotSkew { count: 3, fraction: 0.7 }),
            ..base.clone()
        };
        let head_share = |sched: &Schedule| {
            let hot_urls: Vec<String> = (0..3).map(|i| format!("http://host{i}.example/page")).collect();
            let hits = sched
                .requests
                .iter()
                .filter(|r| matches!(&r.op, Op::Check { url } if hot_urls.contains(url)))
                .count();
            hits as f64 / sched.len() as f64
        };
        let plain = head_share(&Schedule::generate(&base, &u));
        let skewed = head_share(&Schedule::generate(&hot, &u));
        assert!(
            skewed > plain + 0.3,
            "hot skew should concentrate the head: {plain:.2} → {skewed:.2}"
        );
    }

    #[test]
    fn diurnal_peak_packs_more_arrivals_than_trough() {
        let u = universe(10);
        let s = ScheduleSpec {
            process: ArrivalProcess::FixedRate { rate_hz: 1000.0 },
            diurnal: Some(DiurnalCurve { amplitude: 0.8, period_secs: 2.0 }),
            duration_secs: 2.0,
            seed: 1,
            ..ScheduleSpec::default()
        };
        let sched = Schedule::generate(&s, &u);
        // first half of the cycle is the peak (sin > 0), second the trough
        let peak = sched.requests.iter().filter(|r| r.at_nanos < 1_000_000_000).count();
        let trough = sched.len() - peak;
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough} — diurnal modulation missing"
        );
    }

    #[test]
    fn watch_pump_rides_along_without_perturbing_check_traffic() {
        let u = universe(20);
        let without = Schedule::generate(&spec(ArrivalProcess::Poisson { rate_hz: 300.0 }), &u);
        let mut with_spec = spec(ArrivalProcess::Poisson { rate_hz: 300.0 });
        with_spec.watch_pump = Some(WatchPumpSpec { rate_hz: 10.0, batch: 4 });
        let with = Schedule::generate(&with_spec, &u);

        let checks = |s: &Schedule| -> Vec<ScheduledRequest> {
            s.requests.iter().filter(|r| r.op.phase() == "check").cloned().collect()
        };
        assert_eq!(checks(&without), checks(&with), "watch pump perturbed the check stream");
        let watches = with.requests.iter().filter(|r| r.op.phase() == "watch").count();
        assert_eq!(watches, 19, "10/s over 2s starting at t=0.1s");
        // bodies carry the requested batch size
        let Some(ScheduledRequest { op: Op::Watch { body }, .. }) =
            with.requests.iter().find(|r| r.op.phase() == "watch")
        else {
            panic!("no watch op")
        };
        assert_eq!(body.lines().count(), 4);
        // merged timeline is sorted
        assert!(with.requests.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
    }

    #[test]
    fn head_lines_are_stable_and_parseable() {
        let u = universe(5);
        let mut s = spec(ArrivalProcess::FixedRate { rate_hz: 50.0 });
        s.watch_pump = Some(WatchPumpSpec { rate_hz: 5.0, batch: 2 });
        let sched = Schedule::generate(&s, &u);
        let head = sched.head_lines(10);
        assert_eq!(head.len(), 10);
        assert_eq!(head, Schedule::generate(&s, &u).head_lines(10));
        for line in &head {
            let mut parts = line.splitn(3, ' ');
            parts.next().unwrap().parse::<u64>().expect("nanos");
            let phase = parts.next().unwrap();
            assert!(phase == "check" || phase.starts_with("watch["), "{line}");
            assert!(parts.next().unwrap().starts_with("http://"), "{line}");
        }
    }
}
