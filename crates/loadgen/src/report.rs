//! Aggregation of injector samples into the bench report persisted at
//! `results/BENCH_loadgen.json`.
//!
//! The report keeps the closed-loop and open-loop views side by side —
//! `resp_*` percentiles are what a closed-loop bench would have claimed,
//! `sched_*` percentiles are what users offered by the schedule actually
//! experienced — plus the lateness histogram and missed-slot count that
//! quantify how far the injector was pushed off its schedule.

use crate::inject::Sample;

/// Lateness histogram bucket upper bounds, in milliseconds. The `+Inf`
/// bucket is implicit (the last count in [`LoadReport::lateness_hist`]).
pub const LATENESS_BUCKETS_MS: [f64; 7] = [0.1, 0.5, 1.0, 5.0, 25.0, 100.0, 500.0];

/// Per-phase outcome breakdown: every fired request lands in exactly one
/// status family, so `total` is the sum of the other fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    pub phase: &'static str,
    pub total: usize,
    pub ok_2xx: usize,
    pub err_4xx: usize,
    /// Admission-control refusals, broken out of the 5xx family because the
    /// bench gates on them separately (503s are back-pressure, not bugs).
    pub err_503: usize,
    pub err_5xx_other: usize,
    /// Connect/read failures (status 0).
    pub transport: usize,
}

/// The full open-loop load report.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests the schedule offered (= samples recorded; nothing is ever
    /// dropped).
    pub offered: usize,
    /// Wall-clock seconds from first scheduled instant to last completion.
    pub wall_secs: f64,
    /// Completions per wall-clock second.
    pub achieved_rps: f64,
    /// Schedule-based latency percentiles (coordinated-omission-proof), ms.
    pub sched_p50_ms: f64,
    pub sched_p99_ms: f64,
    pub sched_p999_ms: f64,
    pub sched_max_ms: f64,
    /// Response-based latency percentiles (the closed-loop view), ms.
    pub resp_p50_ms: f64,
    pub resp_p99_ms: f64,
    pub resp_p999_ms: f64,
    pub resp_max_ms: f64,
    /// Lateness percentiles, ms.
    pub lateness_p99_ms: f64,
    pub lateness_max_ms: f64,
    /// Requests that fired later than the configured miss tolerance.
    pub missed_slots: usize,
    /// Counts per [`LATENESS_BUCKETS_MS`] bucket, plus the +Inf overflow as
    /// the final element (cumulative, Prometheus-style).
    pub lateness_hist: Vec<u64>,
    pub phases: Vec<PhaseBreakdown>,
}

/// The value at quantile `q` (0..=1) of an ascending-sorted slice, by the
/// nearest-rank method; 0 for an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Fold samples into the report. `miss_tolerance_nanos` is the injector's
/// threshold for declaring a slot missed.
pub fn summarize(samples: &[Sample], miss_tolerance_nanos: u64) -> LoadReport {
    let mut sched: Vec<u64> = samples.iter().map(|s| s.sched_latency_nanos).collect();
    let mut resp: Vec<u64> = samples.iter().map(|s| s.resp_latency_nanos).collect();
    let mut late: Vec<u64> = samples.iter().map(|s| s.lateness_nanos).collect();
    sched.sort_unstable();
    resp.sort_unstable();
    late.sort_unstable();

    // wall clock: first scheduled instant → last completion on the shared
    // run clock (scheduled + sched-latency)
    let begin = samples.iter().map(|s| s.scheduled_nanos).min().unwrap_or(0);
    let end = samples
        .iter()
        .map(|s| s.scheduled_nanos + s.sched_latency_nanos)
        .max()
        .unwrap_or(0);
    let wall_secs = (end.saturating_sub(begin)) as f64 / 1e9;

    let mut lateness_hist = vec![0u64; LATENESS_BUCKETS_MS.len() + 1];
    for &nanos in &late {
        let ms = ms(nanos);
        for (i, bound) in LATENESS_BUCKETS_MS.iter().enumerate() {
            if ms <= *bound {
                lateness_hist[i] += 1;
            }
        }
        *lateness_hist.last_mut().expect("hist non-empty") += 1; // +Inf
    }

    let mut phases: Vec<PhaseBreakdown> = Vec::new();
    for s in samples {
        let slot = match phases.iter_mut().find(|p| p.phase == s.phase) {
            Some(p) => p,
            None => {
                phases.push(PhaseBreakdown {
                    phase: s.phase,
                    total: 0,
                    ok_2xx: 0,
                    err_4xx: 0,
                    err_503: 0,
                    err_5xx_other: 0,
                    transport: 0,
                });
                phases.last_mut().expect("just pushed")
            }
        };
        slot.total += 1;
        match s.status {
            0 => slot.transport += 1,
            503 => slot.err_503 += 1,
            200..=299 => slot.ok_2xx += 1,
            400..=499 => slot.err_4xx += 1,
            _ => slot.err_5xx_other += 1,
        }
    }
    phases.sort_by_key(|p| p.phase);

    LoadReport {
        offered: samples.len(),
        wall_secs,
        achieved_rps: if wall_secs > 0.0 { samples.len() as f64 / wall_secs } else { 0.0 },
        sched_p50_ms: ms(percentile(&sched, 0.50)),
        sched_p99_ms: ms(percentile(&sched, 0.99)),
        sched_p999_ms: ms(percentile(&sched, 0.999)),
        sched_max_ms: ms(sched.last().copied().unwrap_or(0)),
        resp_p50_ms: ms(percentile(&resp, 0.50)),
        resp_p99_ms: ms(percentile(&resp, 0.99)),
        resp_p999_ms: ms(percentile(&resp, 0.999)),
        resp_max_ms: ms(resp.last().copied().unwrap_or(0)),
        lateness_p99_ms: ms(percentile(&late, 0.99)),
        lateness_max_ms: ms(late.last().copied().unwrap_or(0)),
        missed_slots: samples.iter().filter(|s| s.lateness_nanos > miss_tolerance_nanos).count(),
        lateness_hist,
        phases,
    }
}

impl LoadReport {
    /// Render as one stable JSON object (no serde in the workspace). Key
    /// order is fixed so `results/BENCH_loadgen.json` diffs cleanly and the
    /// CI gate can grep fields naively.
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.lateness_hist.iter().map(u64::to_string).collect();
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"total\":{},\"ok_2xx\":{},\"err_4xx\":{},\"err_503\":{},\"err_5xx_other\":{},\"transport\":{}}}",
                    p.phase, p.total, p.ok_2xx, p.err_4xx, p.err_503, p.err_5xx_other, p.transport
                )
            })
            .collect();
        format!(
            "{{\"offered\":{},\"wall_secs\":{:.3},\"achieved_rps\":{:.1},\
             \"sched_p50_ms\":{:.3},\"sched_p99_ms\":{:.3},\"sched_p999_ms\":{:.3},\"sched_max_ms\":{:.3},\
             \"resp_p50_ms\":{:.3},\"resp_p99_ms\":{:.3},\"resp_p999_ms\":{:.3},\"resp_max_ms\":{:.3},\
             \"lateness_p99_ms\":{:.3},\"lateness_max_ms\":{:.3},\"missed_slots\":{},\
             \"lateness_hist\":[{}],\"phases\":[{}]}}",
            self.offered,
            self.wall_secs,
            self.achieved_rps,
            self.sched_p50_ms,
            self.sched_p99_ms,
            self.sched_p999_ms,
            self.sched_max_ms,
            self.resp_p50_ms,
            self.resp_p99_ms,
            self.resp_p999_ms,
            self.resp_max_ms,
            self.lateness_p99_ms,
            self.lateness_max_ms,
            self.missed_slots,
            hist.join(","),
            phases.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sched_ns: u64, late_ns: u64, resp_ns: u64, status: u16, phase: &'static str) -> Sample {
        Sample {
            scheduled_nanos: sched_ns,
            lateness_nanos: late_ns,
            sched_latency_nanos: resp_ns + late_ns,
            resp_latency_nanos: resp_ns,
            status,
            phase,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.001), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
    }

    #[test]
    fn sched_percentiles_dominate_resp_percentiles() {
        // lateness grows linearly (a backed-up injector): sched view must
        // dominate the resp view at every reported percentile
        let samples: Vec<Sample> = (0..1000)
            .map(|i| sample(i * 1_000_000, i * 500_000, 2_000_000, 200, "check"))
            .collect();
        let r = summarize(&samples, 1_000_000);
        assert!(r.sched_p50_ms >= r.resp_p50_ms);
        assert!(r.sched_p99_ms > r.resp_p99_ms * 10.0, "{} vs {}", r.sched_p99_ms, r.resp_p99_ms);
        assert!(r.sched_max_ms >= r.sched_p999_ms && r.sched_p999_ms >= r.sched_p99_ms);
        // lateness > 1ms for i >= 3: slots 3..1000 missed
        assert_eq!(r.missed_slots, 997);
    }

    #[test]
    fn phase_breakdown_partitions_statuses() {
        let samples = vec![
            sample(0, 0, 1000, 200, "check"),
            sample(1, 0, 1000, 404, "check"),
            sample(2, 0, 1000, 503, "check"),
            sample(3, 0, 1000, 500, "check"),
            sample(4, 0, 1000, 0, "check"),
            sample(5, 0, 1000, 200, "watch"),
        ];
        let r = summarize(&samples, 1_000_000);
        assert_eq!(r.offered, 6);
        let check = r.phases.iter().find(|p| p.phase == "check").expect("check phase");
        assert_eq!(
            (check.total, check.ok_2xx, check.err_4xx, check.err_503, check.err_5xx_other, check.transport),
            (5, 1, 1, 1, 1, 1)
        );
        let watch = r.phases.iter().find(|p| p.phase == "watch").expect("watch phase");
        assert_eq!((watch.total, watch.ok_2xx), (1, 1));
    }

    #[test]
    fn lateness_histogram_is_cumulative_with_overflow() {
        let samples = vec![
            sample(0, 50_000, 1000, 200, "check"),        // 0.05ms → every bucket
            sample(1, 2_000_000, 1000, 200, "check"),     // 2ms → 5ms bucket up
            sample(2, 900_000_000, 1000, 200, "check"),   // 900ms → only +Inf
        ];
        let r = summarize(&samples, 1_000_000);
        assert_eq!(r.lateness_hist, vec![1, 1, 1, 2, 2, 2, 2, 3]);
        assert_eq!(*r.lateness_hist.last().unwrap() as usize, r.offered);
    }

    #[test]
    fn json_has_the_gated_fields_and_parses_numerically() {
        let samples = vec![sample(0, 0, 2_000_000, 200, "check")];
        let json = summarize(&samples, 1_000_000).to_json();
        for key in [
            "\"offered\":", "\"achieved_rps\":", "\"sched_p99_ms\":", "\"resp_p99_ms\":",
            "\"lateness_p99_ms\":", "\"missed_slots\":", "\"lateness_hist\":[", "\"phases\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
